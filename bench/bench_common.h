// Shared helpers for the table/figure regeneration benches.
//
// Each bench binary regenerates one table or figure from the paper and
// prints (a) the measured rows and (b) the paper's reported values for
// side-by-side comparison. Absolute numbers are not expected to match (the
// substrate is a deterministic virtual machine, not the authors' Xeon
// testbed); the *shape* — who wins, by roughly what factor, where
// crossovers fall — is the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "support/table.h"

namespace cb::bench {

/// Profiles a bundled program end to end; aborts loudly on failure.
inline Profiler profileAsset(const std::string& name, bool fast = false,
                             uint64_t threshold = 9973,
                             std::map<std::string, std::string> configs = {}) {
  Profiler p;
  p.options().compile.fast = fast;
  p.options().run.fastCostProfile = fast;
  p.options().run.sampleThreshold = threshold;
  for (auto& [k, v] : configs) p.options().run.configOverrides[k] = v;
  if (!p.profileFile(assetProgram(name))) {
    std::fprintf(stderr, "bench: profiling %s failed:\n%s\n", name.c_str(),
                 p.lastError().c_str());
    std::exit(1);
  }
  return p;
}

/// Runs a bundled program without sampling and returns its virtual-cycle
/// wall time (the "run time" of the paper's speedup tables).
inline uint64_t runtimeCycles(const std::string& name, bool fast = false,
                              std::map<std::string, std::string> configs = {}) {
  Profiler p;
  p.options().compile.fast = fast;
  p.options().run.fastCostProfile = fast;
  p.options().run.sampleThreshold = 0;
  for (auto& [k, v] : configs) p.options().run.configOverrides[k] = v;
  if (!(p.compileFile(assetProgram(name)) && p.run())) {
    std::fprintf(stderr, "bench: running %s failed:\n%s\n", name.c_str(), p.lastError().c_str());
    std::exit(1);
  }
  return p.runResult()->totalCycles;
}

/// runtimeCycles under an explicit cost profile (e.g.
/// rt::CostProfile::bandwidthCeiling) instead of the standard/fast pair.
/// `fast` still selects the compile pipeline; the profile decides the costs.
inline uint64_t runtimeCyclesProfile(const std::string& name, const rt::CostProfile& profile,
                                     bool fast = false,
                                     std::map<std::string, std::string> configs = {}) {
  Profiler p;
  p.options().compile.fast = fast;
  p.options().run.costProfileOverride = profile;
  p.options().run.sampleThreshold = 0;
  for (auto& [k, v] : configs) p.options().run.configOverrides[k] = v;
  if (!(p.compileFile(assetProgram(name)) && p.run())) {
    std::fprintf(stderr, "bench: running %s failed:\n%s\n", name.c_str(), p.lastError().c_str());
    std::exit(1);
  }
  return p.runResult()->totalCycles;
}

/// Same, for an in-memory source (LULESH variants).
inline uint64_t runtimeCyclesSource(const std::string& source, bool fast = false) {
  Profiler p;
  p.options().compile.fast = fast;
  p.options().run.fastCostProfile = fast;
  p.options().run.sampleThreshold = 0;
  if (!(p.compileString("variant.chpl", source) && p.run())) {
    std::fprintf(stderr, "bench: running variant failed:\n%s\n", p.lastError().c_str());
    std::exit(1);
  }
  return p.runResult()->totalCycles;
}

/// Blame percentage of a named variable ("-" when absent).
inline std::string blameOf(const Profiler& p, const std::string& name) {
  const pm::VariableBlame* row = p.blameReport()->find(name);
  if (!row) return "-";
  return formatFixed(row->percent, 1) + "%";
}

inline void printHeader(const char* what) {
  std::printf("==================================================================\n");
  std::printf("%s\n", what);
  std::printf("==================================================================\n");
}

}  // namespace cb::bench
