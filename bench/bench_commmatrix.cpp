// Comm-matrix / aggregator bench: the conveyors-style naive-vs-aggregated
// index-gather pair at 4 simulated locales. Emits a single JSON object (for
// the CI timing-smoke artifact) with the virtual-cycle totals of both
// variants under both cost profiles, the exact transfer counters, the
// hottest locale pairs, and the wall-clock time of the profiled runs. Exits
// non-zero if aggregation fails to win by >= 3x or the twins' outputs
// diverge — the bench doubles as an acceptance check.
#include <chrono>

#include "bench_common.h"

namespace {

using Clock = std::chrono::steady_clock;

struct IgRun {
  uint64_t cycles = 0;
  uint64_t gets = 0, puts = 0, aggGets = 0, aggPuts = 0, flushes = 0;
  double wallMs = 0.0;
  std::string output;
  std::map<uint64_t, uint64_t> matrix;
};

IgRun runIg(const char* program, bool fast) {
  cb::Profiler p;
  p.options().compile.fast = fast;
  p.options().run.fastCostProfile = fast;
  // One worker stream and a non-zero rank: remote latency lands undiluted
  // on the critical path, the regime the aggregation ratio is defined in.
  p.options().run.numLocales = 4;
  p.options().run.localeId = 1;
  p.options().run.numWorkers = 1;
  p.options().run.configOverrides["hereId"] = "1";
  auto t0 = Clock::now();
  if (!p.profileFile(cb::assetProgram(program))) {
    std::fprintf(stderr, "bench: profiling %s failed:\n%s\n", program, p.lastError().c_str());
    std::exit(1);
  }
  auto t1 = Clock::now();
  const cb::sampling::RunLog& log = p.runResult()->log;
  IgRun r;
  r.cycles = p.runResult()->totalCycles;
  r.gets = log.commGets;
  r.puts = log.commPuts;
  r.aggGets = log.commAggGets;
  r.aggPuts = log.commAggPuts;
  r.flushes = log.commAggFlushes;
  r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.output = p.runResult()->output;
  for (const auto& [key, count] : log.commMatrix) r.matrix[key] = count;
  return r;
}

void emitVariant(const char* label, const IgRun& naive, const IgRun& agg, bool last) {
  double ratio = agg.cycles ? static_cast<double>(naive.cycles) / agg.cycles : 0.0;
  std::printf("  \"%s\": {\n", label);
  std::printf("    \"naive_cycles\": %llu,\n", (unsigned long long)naive.cycles);
  std::printf("    \"agg_cycles\": %llu,\n", (unsigned long long)agg.cycles);
  std::printf("    \"ratio\": %.3f,\n", ratio);
  std::printf("    \"naive_gets\": %llu, \"naive_puts\": %llu,\n",
              (unsigned long long)naive.gets, (unsigned long long)naive.puts);
  std::printf("    \"agg_gets\": %llu, \"agg_puts\": %llu, \"agg_flushes\": %llu,\n",
              (unsigned long long)agg.aggGets, (unsigned long long)agg.aggPuts,
              (unsigned long long)agg.flushes);
  std::printf("    \"naive_wall_ms\": %.1f, \"agg_wall_ms\": %.1f\n", naive.wallMs,
              agg.wallMs);
  std::printf("  }%s\n", last ? "" : ",");
  if (ratio < 3.0) {
    std::fprintf(stderr, "bench: %s aggregation ratio %.2fx is below the 3x acceptance bar\n",
                 label, ratio);
    std::exit(1);
  }
  if (naive.output != agg.output) {
    std::fprintf(stderr, "bench: %s naive/agg outputs diverge:\n%s\nvs\n%s\n", label,
                 naive.output.c_str(), agg.output.c_str());
    std::exit(1);
  }
  if (agg.matrix != naive.matrix) {
    std::fprintf(stderr, "bench: %s naive/agg comm matrices diverge\n", label);
    std::exit(1);
  }
}

}  // namespace

int main() {
  IgRun naiveStd = runIg("ig_naive", false);
  IgRun aggStd = runIg("ig_agg", false);
  IgRun naiveFast = runIg("ig_naive", true);
  IgRun aggFast = runIg("ig_agg", true);

  std::printf("{\n");
  emitVariant("standard", naiveStd, aggStd, false);
  emitVariant("fast", naiveFast, aggFast, false);
  // The hottest locale pairs of the naive run (identical for the agg twin,
  // asserted above): the scatter structure the commmatrix view renders.
  std::printf("  \"hot_pairs\": [");
  size_t i = 0;
  for (const auto& [key, count] : naiveStd.matrix) {
    std::printf("%s{\"src\": %d, \"dst\": %d, \"elements\": %llu}", i++ ? ", " : "",
                cb::sampling::RunLog::pairSrc(key), cb::sampling::RunLog::pairDst(key),
                (unsigned long long)count);
  }
  std::printf("]\n}\n");
  return 0;
}
