// Regenerates the paper's Table V: CLOMP original vs flat-array version
// over four (numParts, zonesPerPart) shapes, with and without --fast.
//
// The paper's sizes (1024/64000 ... 65536/6400) are scaled down ~1000x so
// the interpreted runs stay in seconds; the zones-to-parts *shape* of each
// row is preserved, which is what drives the speedup pattern (zone-loop
// heavy rows gain ~2x; the few-zones-per-part row is diluted by per-part
// overheads and gains least).
#include <cstdio>
#include <map>
#include <string>

#include "bench_common.h"

int main() {
  using namespace cb;
  bench::printHeader("Table V — CLOMP results w/ or w/o --fast");

  struct Size {
    const char* paperLabel;
    int parts, zones, timeScale;
    const char* paperNoFast;
    const char* paperFast;
  };
  const Size sizes[] = {
      {"1024/64,000 (scaled 32/1000)", 32, 1000, 4, "1.84", "2.59"},
      {"65536/10    (scaled 4096/4)", 4096, 4, 4, "1.09", "2.40"},
      {"12/640,000  (scaled 4/8000)", 4, 8000, 4, "2.13", "2.65"},
      {"65536/6400  (scaled 1024/64)", 1024, 64, 4, "1.10", "1.96"},
  };

  TextTable t({"Flag", "Problem Size", "Original", "Optimized", "Speedup", "Paper"});
  for (bool fast : {false, true}) {
    for (const Size& s : sizes) {
      std::map<std::string, std::string> cfg = {
          {"CLOMP_numParts", std::to_string(s.parts)},
          {"CLOMP_zonesPerPart", std::to_string(s.zones)},
          {"CLOMP_timeScale", std::to_string(s.timeScale)},
      };
      uint64_t orig = bench::runtimeCycles("clomp", fast, cfg);
      uint64_t opt = bench::runtimeCycles("clomp_opt", fast, cfg);
      double speedup = static_cast<double>(orig) / static_cast<double>(opt);
      t.addRow({fast ? "w/ fast" : "w/o fast", s.paperLabel, std::to_string(orig),
                std::to_string(opt), formatFixed(speedup, 2),
                fast ? s.paperFast : s.paperNoFast});
    }
    t.addSeparator();
  }
  std::printf("%s", t.render().c_str());
  std::printf("(numThreads=12, as in the paper's footnote)\n");

  // Same four shapes under the bandwidth-ceiling profile. Only row 4's
  // optimized flat zone array (1024 x 64 x 8B = 512KB) exceeds cache
  // residency, so the memory roofline prices its streaming accesses and the
  // row-4 speedup collapses toward the paper's 1.10x / 1.96x — the
  // deviation the latency-only model could not reproduce. Rows 1-3 stay
  // cache-resident and must not move.
  std::printf("\nWith bandwidth-ceiling cost profile (memory roofline active):\n");
  TextTable c({"Flag", "Problem Size", "Original", "Optimized", "Speedup", "Paper"});
  for (bool fast : {false, true}) {
    rt::CostProfile ceiling = rt::CostProfile::bandwidthCeiling(fast);
    for (const Size& s : sizes) {
      std::map<std::string, std::string> cfg = {
          {"CLOMP_numParts", std::to_string(s.parts)},
          {"CLOMP_zonesPerPart", std::to_string(s.zones)},
          {"CLOMP_timeScale", std::to_string(s.timeScale)},
      };
      uint64_t orig = bench::runtimeCyclesProfile("clomp", ceiling, fast, cfg);
      uint64_t opt = bench::runtimeCyclesProfile("clomp_opt", ceiling, fast, cfg);
      double speedup = static_cast<double>(orig) / static_cast<double>(opt);
      c.addRow({fast ? "w/ fast" : "w/o fast", s.paperLabel, std::to_string(orig),
                std::to_string(opt), formatFixed(speedup, 2),
                fast ? s.paperFast : s.paperNoFast});
    }
    c.addSeparator();
  }
  std::printf("%s", c.render().c_str());
  return 0;
}
