// Regenerates the paper's Table VIII: how each optimization shifts the
// blame profile of the variables it targets (Original vs P1 vs VG vs CENN),
// grouped the way the paper groups them.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/lulesh_variants.h"

namespace {

cb::Profiler profileVariant(const cb::LuleshVariant& v) {
  cb::Profiler p;
  p.options().run.sampleThreshold = 9973;
  if (!p.profileString("lulesh.chpl", cb::luleshSource(v))) {
    std::fprintf(stderr, "%s\n", p.lastError().c_str());
    std::exit(1);
  }
  return p;
}

}  // namespace

int main() {
  using namespace cb;
  bench::printHeader("Table VIII — blame comparison between optimizations");

  Profiler original = profileVariant({true, true, true, false, false});
  Profiler p1 = profileVariant({true, false, false, false, false});
  Profiler vg = profileVariant({true, true, true, true, false});
  Profiler cenn = profileVariant({true, true, true, false, true});

  // Paper's grouping: the hourglass group (affected by P1), the
  // VG group (determ/dvdx), and the CENN group (b_x/y/z).
  const std::vector<std::vector<const char*>> groups = {
      {"hgfx", "hgfy", "hgfz", "shx", "shy", "shz", "hx", "hy", "hz", "hourgam",
       "hourmodx", "hourmody", "hourmodz"},
      {"dvdx", "determ"},
      {"b_x", "b_y", "b_z"},
  };

  TextTable t({"variable", "Original", "P1", "VG", "CENN"});
  for (const auto& group : groups) {
    for (const char* name : group) {
      t.addRow({name, bench::blameOf(original, name), bench::blameOf(p1, name),
                bench::blameOf(vg, name), bench::blameOf(cenn, name)});
    }
    t.addSeparator();
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Expected shape (paper): P1 lowers the hourglass group; VG/CENN leave it\n"
      "roughly unchanged; CENN lowers b_x/y/z.\n");
  return 0;
}
