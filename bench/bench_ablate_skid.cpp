// Ablation: PMU skid (§IV.B). The paper samples events, notes "skid is an
// important factor that most sampling based profilers need to take into
// account", and leaves compensation to future work. Here we inject skid
// (the sampled IP overshoots the overflowing instruction by N instructions)
// and measure how the CLOMP blame profile degrades.
#include <cstdio>

#include "bench_common.h"

namespace {

cb::Profiler profileWithSkid(uint32_t skid) {
  cb::Profiler p;
  p.options().run.sampleThreshold = 9973;
  p.options().run.skidInstructions = skid;
  if (!p.profileFile(cb::assetProgram("clomp"))) {
    std::fprintf(stderr, "%s\n", p.lastError().c_str());
    std::exit(1);
  }
  return p;
}

}  // namespace

int main() {
  using namespace cb;
  bench::printHeader("Ablation — PMU skid (sampled IP overshoots by N instructions, CLOMP)");

  TextTable t({"Skid (instrs)", "value blame", "remaining_deposit", "deposit", "j"});
  for (uint32_t skid : {0u, 2u, 5u, 10u, 25u}) {
    Profiler p = profileWithSkid(skid);
    t.addRow({std::to_string(skid),
              bench::blameOf(p, "->partArray[i].zoneArray[j].value"),
              bench::blameOf(p, "remaining_deposit"), bench::blameOf(p, "deposit"),
              bench::blameOf(p, "j")});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Skid smears samples onto following instructions: fine-grained rows\n"
      "(loop-local scalars) drift while the dominant aggregate stays put —\n"
      "why the paper plans instruction-precise (ProfileMe-style) sampling.\n");
  return 0;
}
