// Regenerates the paper's Table I: the variable -> blame-lines map for the
// Fig. 1 example, plus the per-variable sample attribution the paper walks
// through in §III (a: 2 samples, b: 1, c: 4 of 4 total).
#include <cstdio>
#include <set>

#include "bench_common.h"

int main() {
  using namespace cb;
  bench::printHeader("Table I — blame lines for the Fig. 1 example");

  Profiler p;
  p.options().run.sampleThreshold = 7;
  if (!p.profileFile(assetProgram("example"))) {
    std::fprintf(stderr, "%s\n", p.lastError().c_str());
    return 1;
  }

  const ir::Module& m = p.compilation()->module();
  const an::FunctionBlame& fb = p.moduleBlame()->fn(m.mainFunc);

  TextTable t({"Variable Name", "Blame Lines (16..20)", "Paper"});
  std::map<std::string, std::string> paper = {
      {"a", "16, 18, 19"}, {"b", "17"}, {"c", "16, 17, 18, 19, 20"}};
  for (an::EntityId e = 0; e < fb.entities.size(); ++e) {
    if (!fb.entities[e].displayable) continue;
    std::string lines;
    for (uint32_t line : fb.blameLines(m, e)) {
      if (line < 16 || line > 20) continue;  // declarations excluded, as in the paper
      if (!lines.empty()) lines += ", ";
      lines += std::to_string(line);
    }
    const std::string& name = fb.entities[e].displayName;
    t.addRow({name, lines, paper.count(name) ? paper[name] : "-"});
  }
  std::printf("%s", t.render().c_str());

  // §III sample walkthrough: with 4 samples on lines 17-20, a is blamed for
  // 2, b for 1, c for all 4 (possible only because blame is inclusive).
  std::printf("\n§III walkthrough (4 samples on lines 17..20): expected a=50%%, b=25%%, c=100%%\n");
  std::printf("measured over this run's %llu samples:\n",
              static_cast<unsigned long long>(p.blameReport()->totalUserSamples));
  for (const char* v : {"a", "b", "c"})
    std::printf("  %s -> %s\n", v, bench::blameOf(p, v).c_str());
  return 0;
}
