// Ablation: interprocedural transfer functions (exit-variable bubbling) ON
// vs OFF. Without bubbling, blame sticks to callee-local names (the ref
// formal `p` inside update_part) instead of the caller's data structures
// (partArray) — the "unknown data" failure mode of §II.B.
#include <cstdio>

#include "bench_common.h"

namespace {

cb::Profiler profileWith(bool interprocedural) {
  cb::Profiler p;
  p.options().attribution.interprocedural = interprocedural;
  p.options().run.sampleThreshold = 9973;
  if (!p.profileFile(cb::assetProgram("clomp"))) {
    std::fprintf(stderr, "%s\n", p.lastError().c_str());
    std::exit(1);
  }
  return p;
}

}  // namespace

int main() {
  using namespace cb;
  bench::printHeader("Ablation — interprocedural transfer functions on/off (CLOMP)");

  Profiler on = profileWith(true);
  Profiler off = profileWith(false);

  TextTable t({"Variable", "bubbling ON", "bubbling OFF"});
  for (const char* v : {"partArray", "->partArray[i]", "->partArray[i].zoneArray[j].value",
                        "->p.zoneArray[j].value", "p", "remaining_deposit"})
    t.addRow({v, bench::blameOf(on, v), bench::blameOf(off, v)});
  std::printf("%s", t.render().c_str());
  std::printf(
      "Expected: with bubbling OFF, partArray's share collapses and the blame\n"
      "sticks to the callee-scope names (->p...), which tell the programmer\n"
      "nothing about which program data structure is hot.\n");
  return 0;
}
