// Regenerates the paper's Table VI: variables and their blame for LULESH.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace cb;
  bench::printHeader("Table VI — LULESH variables and their blame");

  Profiler p = bench::profileAsset("lulesh");

  struct Row {
    const char* name;
    const char* paper;
    const char* paperContext;
  };
  const Row rows[] = {
      {"hgfz", "30.8%", "CalcFBHourglassForceForElems"},
      {"hgfx", "29.5%", "CalcFBHourglassForceForElems"},
      {"hgfy", "29.2%", "CalcFBHourglassForceForElems"},
      {"shz", "27.9%", "CalcElemFBHourglassForce"},
      {"hz", "27.6%", "CalcElemFBHourglassForce"},
      {"shx", "26.9%", "CalcElemFBHourglassForce"},
      {"shy", "26.6%", "CalcElemFBHourglassForce"},
      {"hx", "26.6%", "CalcElemFBHourglassForce"},
      {"hy", "26.6%", "CalcElemFBHourglassForce"},
      {"hourgam", "25.0%", "CalcFBHourglassForceForElems"},
      {"determ", "15.7%", "CalcVolumeForceForElems"},
      {"b_x", "9.7%", "IntegrateStressForElems"},
      {"b_z", "9.7%", "IntegrateStressForElems"},
      {"b_y", "8.7%", "IntegrateStressForElems"},
      {"dvdx", "8.3%", "CalcHourglassControlForElems"},
      {"hourmodx", "5.8%", "CalcFBHourglassForceForElems"},
      {"hourmody", "5.1%", "CalcFBHourglassForceForElems"},
      {"hourmodz", "4.8%", "CalcFBHourglassForceForElems"},
  };

  TextTable t({"Name", "Blame (measured)", "Blame (paper)", "Context"});
  for (const Row& r : rows) {
    const pm::VariableBlame* row = p.blameReport()->find(r.name);
    t.addRow({r.name, bench::blameOf(p, r.name), r.paper, row ? row->context : r.paperContext});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nNote: the sum of all blame exceeds 100%% (inclusive attribution, §III).\n");
  return 0;
}
