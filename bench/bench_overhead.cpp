// Regenerates the paper's §V overhead paragraph for LULESH:
//   - per-stack-walk cost vs sampling interval (the paper: 0.051 ms walk,
//     241 ms interval => 0.02% overhead),
//   - raw dataset size (paper: 6-20 MB),
//   - post-mortem processing time per sample (paper: ~16 ms).
// Ours are measured in real (host) time over the virtual run.
#include <chrono>
#include <cstdio>

#include "bench_common.h"

using Clock = std::chrono::steady_clock;

int main() {
  using namespace cb;
  bench::printHeader("§V overhead — monitoring and post-mortem costs (LULESH)");

  Profiler p;
  p.options().run.sampleThreshold = 9973;
  if (!p.compileFile(assetProgram("lulesh"))) return 1;
  p.analyze();

  auto t0 = Clock::now();
  if (!p.run()) return 1;
  auto t1 = Clock::now();

  const sampling::RunLog& log = p.runResult()->log;
  size_t samples = log.samples.size();
  double runMs = std::chrono::duration<double, std::milli>(t1 - t0).count();

  // Approximate raw dataset size: every sample stores its stack frames;
  // every spawn stores a pre-spawn stack.
  size_t bytes = 0;
  for (const auto& s : log.samples) bytes += sizeof(s) + s.stack.size() * sizeof(sampling::Frame);
  for (const auto& [tag, rec] : log.spawns)
    bytes += sizeof(rec) + rec.preSpawnStack.size() * sizeof(sampling::Frame);

  auto t2 = Clock::now();
  if (!p.postProcess()) return 1;
  auto t3 = Clock::now();
  double postMs = std::chrono::duration<double, std::milli>(t3 - t2).count();

  double avgDepth = 0;
  size_t walked = 0;
  for (const auto& s : log.samples) {
    if (s.runtimeFrame != sampling::RuntimeFrameKind::None) continue;  // idle: no walk
    avgDepth += static_cast<double>(s.stack.size());
    ++walked;
  }
  if (walked) avgDepth /= static_cast<double>(walked);

  std::printf("samples taken:                 %zu\n", samples);
  std::printf("virtual sampling interval:     %llu cycles\n",
              static_cast<unsigned long long>(log.sampleThreshold));
  std::printf("monitored run (host time):     %.1f ms  (%.4f ms/sample incl. stack walks)\n",
              runMs, samples ? runMs / samples : 0.0);
  std::printf("average stack-walk depth:      %.1f frames\n", avgDepth);
  std::printf("raw dataset size:              %.2f MB  (paper: 6-20 MB at full scale)\n",
              bytes / 1e6);
  std::printf("post-mortem processing:        %.1f ms total, %.4f ms/sample (paper: ~16 ms/sample\n"
              "                               on 2010-era hardware with DWARF resolution)\n",
              postMs, samples ? postMs / samples : 0.0);

  // The paper's headline: monitoring overhead is ~0.02% because the walk is
  // ~5000x cheaper than the interval. Our analogue: one sample per ~10k
  // virtual cycles, each walk touching only the live frames.
  std::printf("sampling overhead ratio:       1 walk per %llu executed cycles\n",
              static_cast<unsigned long long>(log.sampleThreshold));
  return 0;
}
