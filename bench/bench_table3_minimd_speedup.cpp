// Regenerates the paper's Table III: MiniMD original vs de-zippered, with
// and without --fast.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace cb;
  bench::printHeader("Table III — MiniMD results w/ or w/o --fast");

  TextTable t({"", "Original", "Optimized", "Speedup", "Paper speedup"});
  for (bool fast : {false, true}) {
    uint64_t orig = bench::runtimeCycles("minimd", fast);
    uint64_t opt = bench::runtimeCycles("minimd_opt", fast);
    double speedup = static_cast<double>(orig) / static_cast<double>(opt);
    t.addRow({fast ? "w/ --fast" : "w/o --fast", std::to_string(orig), std::to_string(opt),
              formatFixed(speedup, 2), fast ? "2.56" : "2.26"});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(run time in virtual cycles; the paper reports seconds)\n");
  return 0;
}
