// Speedup of the parallel sharded post-mortem pipeline (consolidation +
// blame attribution + deterministic merge) over the sequential path, at
// 1/2/4/8 workers, on the LULESH and MiniMD assets. The sample logs are
// produced once per program at a low PMU threshold so step 3 has a
// paper-scale sample volume to chew on; every parallel run is checked
// bit-identical to the sequential report before its time is reported.
#include <chrono>

#include "bench_common.h"
#include "postmortem/parallel.h"
#include "support/thread_pool.h"

namespace {

using cb::bench::printHeader;
using Clock = std::chrono::steady_clock;

double millis(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

void benchProgram(const char* name, uint64_t threshold) {
  cb::Profiler p = cb::bench::profileAsset(name, /*fast=*/false, threshold);
  const cb::ir::Module& m = p.compilation()->module();
  const cb::an::ModuleBlame& mb = *p.moduleBlame();
  const cb::sampling::RunLog& log = p.runResult()->log;

  std::printf("\n%s: %zu samples (%zu user), %zu spawn records\n", name, log.samples.size(),
              log.numUserSamples(), log.spawns.size());
  std::printf("  %-28s %12s %10s\n", "configuration", "time (ms)", "speedup");

  auto timePostmortem = [&](uint32_t workers) {
    cb::pm::ParallelOptions popts;
    popts.workers = workers;
    // Warm-up + best-of-3: post-mortem time, not first-touch page faults.
    double best = 1e300;
    cb::pm::PostmortemResult r;
    for (int rep = 0; rep < 3; ++rep) {
      auto t0 = Clock::now();
      r = cb::pm::runPostmortem(m, &mb, log, {}, {}, popts);
      auto t1 = Clock::now();
      best = std::min(best, millis(t0, t1));
    }
    return std::pair<double, cb::pm::PostmortemResult>(best, std::move(r));
  };

  auto [seqMs, seqResult] = timePostmortem(1);
  std::printf("  %-28s %12.2f %9.2fx\n", "sequential (workers=1)", seqMs, 1.0);
  for (uint32_t workers : {2u, 4u, 8u}) {
    auto [ms, result] = timePostmortem(workers);
    bool identical =
        result.report == seqResult.report && result.instances == seqResult.instances;
    std::printf("  workers=%-2u shards=%-12u %12.2f %9.2fx%s\n", workers,
                workers * cb::pm::kShardsPerWorker, ms, seqMs / ms,
                identical ? "" : "  ** MISMATCH **");
    if (!identical) std::exit(1);
  }
}

}  // namespace

int main() {
  printHeader(
      "Parallel sharded post-mortem: speedup over the sequential path\n"
      "(shard by stream/taskTag -> per-shard attribute -> deterministic merge;\n"
      "every row is verified bit-identical to workers=1 before timing counts)");
  std::printf("hardware concurrency: %u\n", cb::ThreadPool::defaultConcurrency());
  benchProgram("lulesh", 211);
  benchProgram("minimd", 211);
  return 0;
}
