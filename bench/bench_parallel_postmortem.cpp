// Speedup of the parallel sharded post-mortem pipeline (consolidation +
// blame attribution + deterministic merge) over the sequential path, at
// 1/2/4/8 workers, on the LULESH and MiniMD assets. The sample logs are
// produced once per program at a low PMU threshold so step 3 has a
// paper-scale sample volume to chew on; every parallel run is checked
// bit-identical to the sequential report before its time is reported.
#include <chrono>
#include <random>

#include "bench_common.h"
#include "postmortem/attribution.h"
#include "postmortem/parallel.h"
#include "support/thread_pool.h"

namespace {

using cb::bench::printHeader;
using Clock = std::chrono::steady_clock;

double millis(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

void benchProgram(const char* name, uint64_t threshold) {
  cb::Profiler p = cb::bench::profileAsset(name, /*fast=*/false, threshold);
  const cb::ir::Module& m = p.compilation()->module();
  const cb::an::ModuleBlame& mb = *p.moduleBlame();
  const cb::sampling::RunLog& log = p.runResult()->log;

  std::printf("\n%s: %zu samples (%zu user), %zu spawn records\n", name, log.samples.size(),
              log.numUserSamples(), log.spawns.size());
  std::printf("  %-28s %12s %10s\n", "configuration", "time (ms)", "speedup");

  auto timePostmortem = [&](uint32_t workers) {
    cb::pm::ParallelOptions popts;
    popts.workers = workers;
    // Warm-up + best-of-3: post-mortem time, not first-touch page faults.
    double best = 1e300;
    cb::pm::PostmortemResult r;
    for (int rep = 0; rep < 3; ++rep) {
      auto t0 = Clock::now();
      r = cb::pm::runPostmortem(m, &mb, log, {}, {}, popts);
      auto t1 = Clock::now();
      best = std::min(best, millis(t0, t1));
    }
    return std::pair<double, cb::pm::PostmortemResult>(best, std::move(r));
  };

  auto [seqMs, seqResult] = timePostmortem(1);
  std::printf("  %-28s %12.2f %9.2fx\n", "sequential (workers=1)", seqMs, 1.0);
  for (uint32_t workers : {2u, 4u, 8u}) {
    auto [ms, result] = timePostmortem(workers);
    bool identical =
        result.report == seqResult.report && result.instances == seqResult.instances;
    std::printf("  workers=%-2u shards=%-12u %12.2f %9.2fx%s\n", workers,
                workers * cb::pm::kShardsPerWorker, ms, seqMs / ms,
                identical ? "" : "  ** MISMATCH **");
    if (!identical) std::exit(1);
  }
}

// Micro-perf of the shared reduction kernel behind both the multi-locale
// combine and the shard merge: 1024 synthetic locale reports, rows drawn
// from a fixed key pool (so merges collide, the hot path), each with a
// sparse comm matrix over 1024 locales. Exercises the two-pointer
// sorted-cell merge and the intern-once-per-report row keying.
void benchAggregation() {
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> name(0, 15), ctx(0, 3), cells(2, 8);
  std::uniform_int_distribution<int32_t> loc(0, 1023);
  std::uniform_int_distribution<uint64_t> samp(1, 997);
  std::vector<cb::pm::BlameReport> reports(1024);
  for (cb::pm::BlameReport& r : reports) {
    for (int i = 0; i < 12; ++i) {
      cb::pm::VariableBlame row;
      row.name = "v" + std::to_string(name(rng));
      row.context = "f" + std::to_string(ctx(rng));
      row.type = "int";
      std::map<std::pair<int32_t, int32_t>, uint64_t> cm;
      for (int c = cells(rng); c > 0; --c) {
        int32_t s = loc(rng), d = loc(rng);
        if (s != d) cm[{s, d}] += samp(rng);
      }
      for (const auto& [key, n] : cm) {
        row.commMatrix.push_back({key.first, key.second, n});
        row.remoteGetSamples += n;
      }
      row.localSamples = samp(rng);
      row.sampleCount = row.localSamples + row.remoteGetSamples;
      r.totalUserSamples += row.sampleCount;
      r.rows.push_back(std::move(row));
    }
    r.totalRawSamples = r.totalUserSamples;
  }
  std::vector<const cb::pm::BlameReport*> ptrs;
  for (const cb::pm::BlameReport& r : reports) ptrs.push_back(&r);

  double batchMs = 1e300, streamMs = 1e300;
  cb::pm::BlameReport batch, streamed;
  for (int rep = 0; rep < 5; ++rep) {
    auto t0 = Clock::now();
    batch = cb::pm::aggregateAcrossLocales(ptrs);
    auto t1 = Clock::now();
    batchMs = std::min(batchMs, millis(t0, t1));
    auto t2 = Clock::now();
    cb::pm::StreamingAggregator agg;
    for (const cb::pm::BlameReport& r : reports) agg.add(r);
    streamed = agg.finish();
    auto t3 = Clock::now();
    streamMs = std::min(streamMs, millis(t2, t3));
  }
  bool identical = batch == streamed;
  std::printf("\naggregate 1024 locale reports (12 rows, sparse 1024-locale matrices):\n");
  std::printf("  %-28s %12.2f %10.0f reports/ms\n", "batch (vector of ptrs)", batchMs,
              1024.0 / batchMs);
  std::printf("  %-28s %12.2f %10.0f reports/ms%s\n", "streaming (fold + finish)", streamMs,
              1024.0 / streamMs, identical ? "" : "  ** MISMATCH **");
  if (!identical) std::exit(1);
}

}  // namespace

int main() {
  printHeader(
      "Parallel sharded post-mortem: speedup over the sequential path\n"
      "(shard by stream/taskTag -> per-shard attribute -> deterministic merge;\n"
      "every row is verified bit-identical to workers=1 before timing counts)");
  std::printf("hardware concurrency: %u\n", cb::ThreadPool::defaultConcurrency());
  benchProgram("lulesh", 211);
  benchProgram("minimd", 211);
  benchAggregation();
  return 0;
}
