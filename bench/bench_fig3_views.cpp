// Regenerates the paper's Fig. 3: the GUI's main display for one run of
// MiniMD — code-centric view (left pane) and flat data-centric view
// (right pane), plus the hybrid blame-points window.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace cb;
  bench::printHeader("Fig. 3 — GUI main display for one run of MiniMD");

  Profiler p = bench::profileAsset("minimd");
  std::printf("%s\n", p.guiText().c_str());
  std::printf("%s\n", p.hybridText().c_str());
  return 0;
}
