// Synthetic-scale microbenchmark of the static blame analysis alone.
//
// Generates mini-Chapel modules with a parameterized function count,
// per-function entity count (assignment-chain length) and inherits-edge
// density, then times `analyzeModule` with the production SCC-condensation
// propagation against the seed's retained Jacobi fixpoint
// (`BlameOptions::referenceFixpoint`). The chains are deliberately oriented
// against the entity-creation order (`v1 = v2; v2 = v3; ...`), so the
// round-robin baseline needs one full pass per chain level while the SCC
// pass stays linear — this is the fixpoint->SCC win the CI timing-smoke
// step tracks over time.
//
//   ./bench_analysis_scale --benchmark_format=json
//
// Benchmark arguments: {functions, chainLength, extraEdgesPerFunction}.
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>

#include "analysis/blame.h"
#include "frontend/compiler.h"
#include "support/rng.h"

namespace {

/// Builds one function body: a declaration block followed by a reversed
/// assignment chain (v1 <- v2 <- ... <- vN <- parameter) plus `extraEdges`
/// random cross-links, some of which close cycles (non-trivial SCCs).
void emitFunction(std::ostringstream& out, const std::string& name, int chainLen, int extraEdges,
                  const std::string& callee, cb::Rng& rng) {
  out << "proc " << name << "(ref x: real) {\n";
  for (int i = 1; i <= chainLen; ++i) out << "  var v" << i << " = 0.0;\n";
  // Reverse chain: entity v_i is created before v_{i+1} but inherits from
  // it, defeating ascending Gauss-Seidel sweeps.
  for (int i = 1; i < chainLen; ++i) out << "  v" << i << " = v" << (i + 1) << " + 1.0;\n";
  out << "  v" << chainLen << " = x * 2.0;\n";
  for (int e = 0; e < extraEdges; ++e) {
    int a = 1 + static_cast<int>(rng.nextBounded(static_cast<uint64_t>(chainLen)));
    int b = 1 + static_cast<int>(rng.nextBounded(static_cast<uint64_t>(chainLen)));
    if (a == b) continue;
    out << "  v" << a << " = v" << b << " * 0.5;\n";  // random density / cycles
  }
  out << "  x = v1;\n";
  if (!callee.empty()) out << "  " << callee << "(x);\n";
  out << "}\n";
}

/// Whole module: f0 -> f1 -> ... -> f{n-1} call chain (callers defined, and
/// thus numbered, before callees — the worst case for the seed's
/// round-robin write-summary closure) with `main` driving f0.
std::string makeSyntheticModule(int numFuncs, int chainLen, int extraEdges) {
  cb::Rng rng(0x5CCBE4Cull);
  std::ostringstream out;
  for (int f = 0; f < numFuncs; ++f) {
    std::string callee = f + 1 < numFuncs ? "f" + std::to_string(f + 1) : "";
    emitFunction(out, "f" + std::to_string(f), chainLen, extraEdges, callee, rng);
  }
  out << "proc main() {\n  var acc = 0.0;\n  f0(acc);\n  writeln(acc);\n}\n";
  return out.str();
}

void runAnalysis(benchmark::State& state, bool referenceFixpoint) {
  int numFuncs = static_cast<int>(state.range(0));
  int chainLen = static_cast<int>(state.range(1));
  int extraEdges = static_cast<int>(state.range(2));
  auto c = cb::fe::Compilation::fromString(
      "synthetic.chpl", makeSyntheticModule(numFuncs, chainLen, extraEdges));
  if (!c->ok()) {
    state.SkipWithError("synthetic module failed to compile");
    return;
  }
  cb::an::BlameOptions opts;
  opts.referenceFixpoint = referenceFixpoint;
  size_t entities = 0;
  for (auto _ : state) {
    cb::an::ModuleBlame mb = cb::an::analyzeModule(c->module(), opts);
    entities = 0;
    for (const auto& fb : mb.functions) entities += fb.entities.size();
    benchmark::DoNotOptimize(entities);
  }
  state.counters["entities"] = static_cast<double>(entities);
  state.counters["entities/s"] =
      benchmark::Counter(static_cast<double>(entities), benchmark::Counter::kIsRate);
}

void BM_AnalyzeScaleScc(benchmark::State& state) { runAnalysis(state, false); }
void BM_AnalyzeScaleReference(benchmark::State& state) { runAnalysis(state, true); }

// {functions, chainLength, extraEdges}. Both variants run the shared sizes
// (the largest, {8,256,16}, is where the >=5x acceptance gate compares:
// measured ~480x — 27ms SCC vs 13s reference). The {16,1024,32} size runs
// SCC-only: the quadratic-round baseline would take hours there, which is
// exactly the asymptotic gap this benchmark exists to track.
BENCHMARK(BM_AnalyzeScaleScc)
    ->Args({4, 64, 8})
    ->Args({8, 256, 16})
    ->Args({16, 1024, 32})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AnalyzeScaleReference)
    ->Args({4, 64, 8})
    ->Args({8, 256, 16})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
