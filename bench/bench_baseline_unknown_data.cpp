// Regenerates the paper's §II.B motivation numbers: an allocation-threshold
// data-centric profiler (HPCToolkit-data-centric stand-in, >=4KB heap
// tracking, no locals, Chapel globals mishandled) files ~95-97% of samples
// under "unknown data" — CLOMP 96.88% and LULESH 95.1% in the paper.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace cb;
  bench::printHeader("§II.B — allocation-threshold baseline: the 'unknown data' problem");

  struct Row {
    const char* program;
    const char* paper;
  };
  const Row rows[] = {{"clomp", "96.88%"}, {"lulesh", "95.1%"}};

  TextTable t({"Program", "'unknown data' (measured)", "'unknown data' (paper)"});
  for (const Row& r : rows) {
    Profiler p = bench::profileAsset(r.program);
    pm::BaselineReport baseline = p.baselineReport();
    t.addRow({r.program, formatFixed(baseline.unknownPercent, 2) + "%", r.paper});
  }
  std::printf("%s", t.render().c_str());

  std::printf("\nFull baseline report for CLOMP:\n");
  Profiler p = bench::profileAsset("clomp");
  std::printf("%s", rpt::baselineView(p.baselineReport()).c_str());
  std::printf("\nCompare with the blame view of the same run:\n%s", p.dataCentricText().c_str());
  return 0;
}
