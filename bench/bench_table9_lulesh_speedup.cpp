// Regenerates the paper's Table IX: LULESH overall results for each
// optimization, with and without --fast.
#include <cstdio>

#include "bench_common.h"
#include "core/lulesh_variants.h"

int main() {
  using namespace cb;
  bench::printHeader("Table IX — LULESH results w/ or w/o --fast");

  struct Row {
    const char* tag;
    LuleshVariant v;
    const char* paperNoFast;
    const char* paperFast;
  };
  const Row rows[] = {
      {"Best Case", LuleshVariant::best(), "1.38", "1.47"},
      {"VG", {true, true, true, true, false}, "1.25", "1.39"},
      {"P 1", {true, false, false, false, false}, "1.07", "1.04"},
      {"CENN", {true, true, true, false, true}, "1.08", "1.02"},
      {"Original", LuleshVariant::original(), "1.00", "1.00"},
  };

  TextTable t({"", "w/o fast (cycles)", "Speedup", "Paper", "w/ fast (cycles)", "Speedup",
               "Paper"});
  uint64_t base = bench::runtimeCyclesSource(luleshSource(LuleshVariant::original()), false);
  uint64_t baseFast = bench::runtimeCyclesSource(luleshSource(LuleshVariant::original()), true);
  for (const Row& r : rows) {
    uint64_t c = bench::runtimeCyclesSource(luleshSource(r.v), false);
    uint64_t cf = bench::runtimeCyclesSource(luleshSource(r.v), true);
    t.addRow({r.tag, std::to_string(c), formatFixed(double(base) / c, 2), r.paperNoFast,
              std::to_string(cf), formatFixed(double(baseFast) / cf, 2), r.paperFast});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
