// Multi-locale PGAS simulation scaling: profileMultiLocale at 1/2/4/8
// locales on the MiniMD distribution variants and CLOMP, reporting (a) the
// comm mix of the aggregated blame (remote share of blamed samples — the
// distribution-mismatch signal), and (b) the wall-clock speedup of the
// locale ThreadPool over the sequential locale loop, verified bit-identical
// before any time is reported. The final section is the PR acceptance pair:
// LULESH at 8 locales, 4 pool workers vs sequential.
#include <chrono>

#include "bench_common.h"

namespace {

using Clock = std::chrono::steady_clock;

double millis(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

struct TimedRun {
  double ms = 0.0;
  cb::MultiLocaleResult r;
};

TimedRun timeMultiLocale(const std::string& name, uint32_t locales, uint32_t workers) {
  cb::ProfileOptions o;
  o.localeWorkers = workers;
  auto t0 = Clock::now();
  cb::MultiLocaleResult r = cb::profileMultiLocale(cb::assetProgram(name), locales, o);
  auto t1 = Clock::now();
  if (!r.ok) {
    std::fprintf(stderr, "bench: %s at %u locales failed:\n%s\n", name.c_str(), locales,
                 r.error.c_str());
    std::exit(1);
  }
  return {millis(t0, t1), std::move(r)};
}

double remoteShare(const cb::pm::BlameReport& rep) {
  uint64_t remote = 0, blamed = 0;
  for (const cb::pm::VariableBlame& row : rep.rows) {
    remote += row.remoteSamples();
    blamed += row.sampleCount;
  }
  return blamed ? 100.0 * static_cast<double>(remote) / blamed : 0.0;
}

void benchProgram(const char* name) {
  std::printf("\n%s:\n", name);
  std::printf("  %-8s %10s %12s %12s %9s %9s\n", "locales", "samples", "seq (ms)",
              "pool4 (ms)", "speedup", "remote%");
  for (uint32_t locales : {1u, 2u, 4u, 8u}) {
    TimedRun seq = timeMultiLocale(name, locales, /*workers=*/1);
    TimedRun par = timeMultiLocale(name, locales, /*workers=*/4);
    bool identical = par.r.aggregate == seq.r.aggregate && par.r.perLocale == seq.r.perLocale;
    std::printf("  %-8u %10llu %12.1f %12.1f %8.2fx %8.1f%%%s\n", locales,
                static_cast<unsigned long long>(seq.r.aggregate.totalRawSamples), seq.ms,
                par.ms, seq.ms / par.ms, remoteShare(seq.r.aggregate),
                identical ? "" : "  ** MISMATCH **");
    if (!identical) std::exit(1);
  }
}

}  // namespace

int main() {
  cb::bench::printHeader(
      "Multi-locale scaling: per-locale SPMD pipelines on a locale ThreadPool\n"
      "(every pooled run is verified bit-identical to the sequential locale\n"
      "loop — aggregate and per-locale reports — before its time is printed)");
  benchProgram("minimd_badloc");
  benchProgram("minimd_blockloc");
  benchProgram("clomp");

  // PR acceptance pair: 8-locale LULESH, 4 pool workers vs sequential.
  std::printf("\nlulesh acceptance pair (8 locales):\n");
  TimedRun seq = timeMultiLocale("lulesh", 8, /*workers=*/1);
  TimedRun par = timeMultiLocale("lulesh", 8, /*workers=*/4);
  bool identical = par.r.aggregate == seq.r.aggregate && par.r.perLocale == seq.r.perLocale;
  std::printf("  sequential %.1f ms, pool(4) %.1f ms -> %.2fx%s (target >= 3x)\n", seq.ms,
              par.ms, seq.ms / par.ms, identical ? "" : "  ** MISMATCH **");
  if (!identical) std::exit(1);
  return 0;
}
