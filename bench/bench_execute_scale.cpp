// Execution-engine scaling benchmarks: virtual instructions/s and samples/s
// for the tree-walking reference interpreter vs the bytecode engine, across
// the program corpus and across replay-thread counts (1/2/4/8) for the
// deterministic parallel worker-stream replay. These measure the tool itself
// (host time per monitored virtual instruction); the RunLogs are
// bit-identical in every configuration, so rows are directly comparable.
//
// Headline number: BM_Execute/lulesh bytecode(seq) vs reference — the
// engine-rewrite speedup on the paper's main case study.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "core/profiler.h"
#include "frontend/compiler.h"
#include "runtime/interp.h"

namespace {

const char* kPrograms[] = {"example", "clomp", "minimd", "lulesh"};

std::unique_ptr<cb::fe::Compilation> compileAsset(const std::string& name) {
  auto c = cb::fe::Compilation::fromFile(cb::assetProgram(name));
  if (!c->ok()) std::abort();
  return c;
}

cb::rt::RunOptions baseOptions() {
  cb::rt::RunOptions o;
  o.sampleThreshold = 9973;
  return o;
}

void reportRates(benchmark::State& state, double instrs, double samples) {
  state.counters["instr/s"] =
      benchmark::Counter(instrs, benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
  state.counters["samples/s"] =
      benchmark::Counter(samples, benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

/// arg0: program index; arg1: 0 = reference tree-walker, otherwise the
/// bytecode engine with arg1 replay threads (1 = sequential).
void BM_Execute(benchmark::State& state) {
  const char* prog = kPrograms[state.range(0)];
  auto c = compileAsset(prog);
  cb::rt::RunOptions opts = baseOptions();
  if (state.range(1) == 0) {
    opts.referenceInterp = true;
  } else {
    opts.replayThreads = static_cast<uint32_t>(state.range(1));
  }
  double instrs = 0, samples = 0;
  for (auto _ : state) {
    cb::rt::RunResult r = cb::rt::execute(c->module(), opts);
    benchmark::DoNotOptimize(r.totalCycles);
    if (!r.ok) std::abort();
    instrs += static_cast<double>(r.instructionsExecuted);
    samples += static_cast<double>(r.log.samples.size());
  }
  reportRates(state, instrs, samples);
  state.SetLabel(std::string(prog) + (state.range(1) == 0
                                          ? "/reference"
                                          : "/bytecode-t" + std::to_string(state.range(1))));
}
BENCHMARK(BM_Execute)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

/// One-time lowering cost of bc::compile (amortized over a whole run).
void BM_BytecodeLowering(benchmark::State& state) {
  auto c = compileAsset("lulesh");
  cb::rt::RunOptions opts = baseOptions();
  opts.maxInstructions = 1;  // fail immediately after compile
  for (auto _ : state) {
    cb::rt::RunResult r = cb::rt::execute(c->module(), opts);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_BytecodeLowering)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
