// Memory-bounded weak scaling: profileMultiLocale on the weakscale.chpl
// neighbor ring (constant per-locale work) at 1/4/16/64/256/1024 simulated
// locales with keepPerLocaleReports=false, so every per-locale BlameReport
// dies as soon as the streaming aggregator has folded it.
//
// Emits one JSON object (the CI timing-smoke artifact) and exits non-zero
// when any acceptance bar fails:
//   - every run completes and the aggregate's comm matrix is the full
//     (l -> l+1 mod L) ring;
//   - streaming == batch bit-identity on real 64-locale reports, and the
//     drop-mode aggregate == the keep-mode aggregate;
//   - allocator counter: folding 1024 reports over the 64-locale key pool
//     grows the accumulator at most 1.5x past its 64-fold footprint;
//   - peak RSS after the full ascending sweep stays under the budget.
#include <sys/resource.h>

#include <chrono>
#include <vector>

#include "bench_common.h"
#include "postmortem/attribution.h"

namespace {

using Clock = std::chrono::steady_clock;

// High-water RSS of this process in MiB (ru_maxrss is KiB on Linux).
double peakRssMb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

struct Row {
  uint32_t locales = 0;
  double ms = 0.0;
  unsigned long long rawSamples = 0;
  size_t commCells = 0;
  size_t rows = 0;
  double peakRss = 0.0;
};

cb::MultiLocaleResult runWeakScale(uint32_t locales, bool keep) {
  cb::ProfileOptions o;
  o.keepPerLocaleReports = keep;
  cb::MultiLocaleResult r =
      cb::profileMultiLocale(cb::assetProgram("weakscale"), locales, o);
  if (!r.ok) {
    std::fprintf(stderr, "bench: weakscale at %u locales failed:\n%s\n", locales,
                 r.error.c_str());
    std::exit(1);
  }
  return r;
}

void requireRing(const cb::MultiLocaleResult& r, uint32_t locales) {
  if (locales == 1) {  // the neighbor is the rank itself: all local
    if (!r.aggregate.totalComm.empty()) {
      std::fprintf(stderr, "bench: 1 locale: unexpected remote cells\n");
      std::exit(1);
    }
    return;
  }
  if (r.aggregate.totalComm.size() != locales) {
    std::fprintf(stderr, "bench: %u locales: expected %u ring cells, got %zu\n", locales,
                 locales, r.aggregate.totalComm.size());
    std::exit(1);
  }
  for (const cb::pm::CommCell& c : r.aggregate.totalComm) {
    if (c.dst != (c.src + 1) % static_cast<int32_t>(locales) || c.samples == 0) {
      std::fprintf(stderr, "bench: %u locales: non-ring cell %d->%d\n", locales, c.src,
                   c.dst);
      std::exit(1);
    }
  }
}

}  // namespace

int main() {
  // The budget the 1024-locale drop-mode sweep must fit in. Measured peak
  // for the whole ascending 1..1024 sweep when this bench was introduced:
  // 9.6 MiB. The budget leaves allocator/toolchain headroom while still
  // catching any return to O(locales x report) materialization, which blows
  // far past it.
  constexpr double kPeakRssBudgetMb = 64.0;

  std::vector<Row> rows;
  for (uint32_t locales : {1u, 4u, 16u, 64u, 256u, 1024u}) {
    auto t0 = Clock::now();
    cb::MultiLocaleResult r = runWeakScale(locales, /*keep=*/false);
    auto t1 = Clock::now();
    requireRing(r, locales);
    for (const cb::pm::BlameReport& rep : r.perLocale) {
      if (!rep.rows.empty()) {
        std::fprintf(stderr, "bench: %u locales: per-locale report retained in drop mode\n",
                     locales);
        std::exit(1);
      }
    }
    rows.push_back({locales, std::chrono::duration<double, std::milli>(t1 - t0).count(),
                    (unsigned long long)r.aggregate.totalRawSamples,
                    r.aggregate.totalComm.size(), r.aggregate.rows.size(), peakRssMb()});
  }

  // Bit-identity on real reports: the streamed keep-mode aggregate vs the
  // batch combine of its retained reports, and drop mode vs keep mode.
  cb::MultiLocaleResult keep64 = runWeakScale(64, /*keep=*/true);
  std::vector<const cb::pm::BlameReport*> ptrs;
  for (const cb::pm::BlameReport& rep : keep64.perLocale) ptrs.push_back(&rep);
  bool streamingMatchesBatch = keep64.aggregate == cb::pm::aggregateAcrossLocales(ptrs);
  cb::MultiLocaleResult drop64 = runWeakScale(64, /*keep=*/false);
  bool dropMatchesKeep = drop64.aggregate == keep64.aggregate;

  // Allocator counter: 1024 folds over the 64-locale key pool must not grow
  // the accumulator meaningfully past its 64-fold footprint.
  cb::pm::StreamingAggregator accum;
  size_t after64 = 0;
  for (int pass = 0; pass < 16; ++pass) {
    for (const cb::pm::BlameReport& rep : keep64.perLocale) accum.add(rep);
    if (pass == 0) after64 = accum.approxMemoryBytes();
  }
  size_t after1024 = accum.approxMemoryBytes();

  double peak = peakRssMb();
  bool rssOk = peak <= kPeakRssBudgetMb;
  bool accumOk = after64 > 0 && after1024 <= after64 + after64 / 2;

  std::printf("{\n  \"weak_scaling\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("    {\"locales\": %u, \"ms\": %.1f, \"ms_per_locale\": %.3f, "
                "\"raw_samples\": %llu, \"comm_cells\": %zu, \"blame_rows\": %zu, "
                "\"peak_rss_mb\": %.1f}%s\n",
                r.locales, r.ms, r.ms / r.locales, r.rawSamples, r.commCells, r.rows,
                r.peakRss, i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"streaming_matches_batch\": %s,\n", streamingMatchesBatch ? "true" : "false");
  std::printf("  \"drop_matches_keep\": %s,\n", dropMatchesKeep ? "true" : "false");
  std::printf("  \"accum_bytes_after_64_folds\": %zu,\n", after64);
  std::printf("  \"accum_bytes_after_1024_folds\": %zu,\n", after1024);
  std::printf("  \"peak_rss_mb\": %.1f,\n", peak);
  std::printf("  \"peak_rss_budget_mb\": %.1f\n}\n", kPeakRssBudgetMb);

  if (!streamingMatchesBatch) {
    std::fprintf(stderr, "bench: streamed aggregate != batch aggregate\n");
    return 1;
  }
  if (!dropMatchesKeep) {
    std::fprintf(stderr, "bench: drop-mode aggregate != keep-mode aggregate\n");
    return 1;
  }
  if (!accumOk) {
    std::fprintf(stderr, "bench: accumulator grew %zu -> %zu bytes over repeated folds\n",
                 after64, after1024);
    return 1;
  }
  if (!rssOk) {
    std::fprintf(stderr, "bench: peak RSS %.1f MiB exceeds the %.1f MiB budget\n", peak,
                 kPeakRssBudgetMb);
    return 1;
  }
  return 0;
}
