// Regenerates the paper's Table II: variables and their blame for MiniMD.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace cb;
  bench::printHeader("Table II — MiniMD variables and their blame");

  Profiler p = bench::profileAsset("minimd");

  struct Row {
    const char* name;
    const char* paper;
  };
  const Row rows[] = {
      {"Pos", "96.3%"},     {"Bins", "84.2%"},      {"RealCount", "80.8%"},
      {"RealPos", "80.8%"}, {"Count", "54.9%"},     {"binSpace", "49.4%"},
  };

  TextTable t({"Name", "Blame (measured)", "Blame (paper)", "Context"});
  for (const Row& r : rows) {
    const pm::VariableBlame* row = p.blameReport()->find(r.name);
    t.addRow({r.name, bench::blameOf(p, r.name), r.paper, row ? row->context : "-"});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nFull top rows:\n%s", p.dataCentricText().c_str());
  return 0;
}
