// Quickstart: profile the paper's Fig. 1 example end to end and print the
// per-variable blame lines (Table I) plus the flat data-centric view.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "core/profiler.h"

int main() {
  cb::Profiler profiler;
  // Sample densely so even this tiny program gets a few samples.
  profiler.options().run.sampleThreshold = 7;
  profiler.options().view.minPercent = 0.0;

  if (!profiler.profileFile(cb::assetProgram("example"))) {
    std::cerr << "profiling failed:\n" << profiler.lastError() << "\n";
    return 1;
  }

  // ---- step 1 artefact: the static blame-lines map (the paper's Table I).
  const cb::an::ModuleBlame& mb = *profiler.moduleBlame();
  const cb::ir::Module& m = profiler.compilation()->module();
  cb::ir::FuncId mainFn = m.mainFunc;
  const cb::an::FunctionBlame& fb = mb.fn(mainFn);

  std::cout << "Blame lines (paper Table I; statement range 16..20):\n";
  for (cb::an::EntityId e = 0; e < fb.entities.size(); ++e) {
    if (!fb.entities[e].displayable) continue;
    std::cout << "  " << fb.entities[e].displayName << " -> ";
    bool first = true;
    for (uint32_t line : fb.blameLines(m, e)) {
      if (line < 16 || line > 20) continue;  // declarations excluded, as in the paper
      std::cout << (first ? "" : ", ") << line;
      first = false;
    }
    std::cout << "\n";
  }

  // ---- step 4 artefact: the flat data-centric view.
  std::cout << "\n" << profiler.dataCentricText() << "\n";
  std::cout << profiler.codeCentricText() << "\n";
  return 0;
}
