// A guided-tuning session, following the paper's §V.A MiniMD case study:
//
//   1. profile the original MiniMD and rank variables by blame;
//   2. the top variables (Pos, Bins) point at the zippered-iteration /
//      domain-remapping loops;
//   3. run the de-zippered version and report the speedup (paper: 2.26x
//      without --fast, 2.56x with).
#include <cstdio>

#include "core/profiler.h"

namespace {

cb::Profiler profileProgram(const char* name, bool fast) {
  cb::Profiler p;
  p.options().compile.fast = fast;
  p.options().run.fastCostProfile = fast;
  if (!p.profileFile(cb::assetProgram(name))) {
    std::fprintf(stderr, "profiling %s failed:\n%s\n", name, p.lastError().c_str());
    std::exit(1);
  }
  return p;
}

}  // namespace

int main() {
  std::printf("=== Step 1: profile the original MiniMD ===\n\n");
  cb::Profiler orig = profileProgram("minimd", false);
  std::printf("%s\n", orig.dataCentricText().c_str());

  std::printf(
      "The two most blamed variables, Pos and Bins, lead straight to the\n"
      "forall loops with zippered iteration and the Pos[DistSpace] domain\n"
      "remaps inside the nested neighbor loops (minimd.chpl, buildNeighbors\n"
      "and computeForce).\n\n");

  std::printf("=== Step 2: apply the de-zippering transformations ===\n\n");
  std::printf("minimd_opt.chpl replaces the zips with plain foralls over binSpace\n"
              "and indexes Pos/Bins/Count directly (see the source diff).\n\n");

  std::printf("=== Step 3: measure ===\n\n");
  for (bool fast : {false, true}) {
    cb::Profiler o = profileProgram("minimd", fast);
    cb::Profiler n = profileProgram("minimd_opt", fast);
    double speedup = static_cast<double>(o.runResult()->totalCycles) /
                     static_cast<double>(n.runResult()->totalCycles);
    std::printf("%-12s original %12llu cycles | optimized %12llu cycles | speedup %.2fx"
                " (paper: %s)\n",
                fast ? "w/ --fast" : "w/o --fast",
                static_cast<unsigned long long>(o.runResult()->totalCycles),
                static_cast<unsigned long long>(n.runResult()->totalCycles), speedup,
                fast ? "2.56x" : "2.26x");
  }
  return 0;
}
