// Command-line profiler driver: compile, analyze, run and report on any
// mini-Chapel program (a bundled asset name or a path to a .chpl file).
// Also built as `cb`, the short paper-facing name. Flags and the program
// argument may appear in any order.
//
//   profile_program clomp --view data
//   profile_program minimd --view pprof --threshold 20011
//   profile_program lulesh --fast --view code
//   profile_program my_prog.chpl --config CLOMP_numParts=128 --time
//   cb --lint assets/programs/minimd_badloc.chpl
//   cb --lint ig_naive --with-run --locales 4
//
// Service mode (profiling-as-a-service):
//   cb --serve --socket /tmp/cb.sock          # resident daemon
//   cb clomp --socket /tmp/cb.sock            # run THIS job on the daemon
//   CB_SERVE_SOCKET=/tmp/cb.sock cb clomp     # same, via the environment
//
// The profiling logic itself lives in src/service/job.cpp and is shared
// verbatim between the local path and the daemon, so served output is
// bit-identical to local output.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cache/analysis_cache.h"
#include "service/client.h"
#include "service/job.h"
#include "service/server.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  // --serve: run as the resident daemon. Remaining flags configure it.
  bool serveMode = false;
  std::string socketPath;
  cb::svc::ServerOptions sopts;
  std::vector<std::string> jobArgs;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << cb::svc::usageText();
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--serve") serveMode = true;
    else if (arg == "--socket") socketPath = next();
    else if (arg == "--serve-workers") sopts.workers =
        static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
    else if (arg == "--max-requests") sopts.maxRequests =
        std::strtoull(next().c_str(), nullptr, 10);
    else jobArgs.push_back(arg);
  }
  if (socketPath.empty())
    if (const char* env = std::getenv("CB_SERVE_SOCKET")) socketPath = env;

  if (serveMode) {
    if (socketPath.empty()) {
      std::cerr << "error: --serve requires --socket PATH (or $CB_SERVE_SOCKET)\n";
      return 2;
    }
    sopts.socketPath = socketPath;
    // The daemon applies a disk cache to every job when configured; a job's
    // own --cache-dir flag still overrides.
    for (size_t i = 0; i + 1 < jobArgs.size(); ++i)
      if (jobArgs[i] == "--cache-dir") sopts.cacheDir = jobArgs[i + 1];
    if (sopts.cacheDir.empty()) sopts.cacheDir = cb::cache::defaultCacheDir();
    cb::svc::Server server(sopts);
    if (!server.start()) {
      std::cerr << "error: " << server.lastError() << "\n";
      return 1;
    }
    std::cerr << "cb-serve: listening on " << socketPath << "\n";
    server.wait();
    server.stop();
    return 0;
  }

  if (!socketPath.empty()) {
    // Thin-client mode: forward the argv to the daemon and relay its answer.
    cb::svc::ClientResult r = cb::svc::runRemote(socketPath, jobArgs);
    if (!r.ok) {
      std::cerr << "error: " << r.error << "\n";
      return 1;
    }
    std::cout << r.job.out;
    std::cerr << r.job.err;
    return r.job.exitCode;
  }

  cb::svc::JobContext ctx;
  ctx.cacheDir = cb::cache::defaultCacheDir();
  cb::svc::JobResult r = cb::svc::runJob(jobArgs, ctx);
  std::cout << r.out;
  std::cerr << r.err;
  return r.exitCode;
}
