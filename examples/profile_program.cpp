// Command-line profiler driver: compile, analyze, run and report on any
// mini-Chapel program (a bundled asset name or a path to a .chpl file).
// Also built as `cb`, the short paper-facing name. Flags and the program
// argument may appear in any order.
//
//   profile_program clomp --view data
//   profile_program minimd --view pprof --threshold 20011
//   profile_program lulesh --fast --view code
//   profile_program my_prog.chpl --config CLOMP_numParts=128 --time
//   cb --lint assets/programs/minimd_badloc.chpl
//   cb --lint ig_naive --with-run --locales 4
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/profiler.h"
#include "report/views.h"
#include "report/html.h"
#include "sampling/log_io.h"

namespace {

void usage() {
  std::cerr <<
      "usage: cb <program|path.chpl> [options]   (flags may appear anywhere)\n"
      "  --lint                static locality & race lint: no execution, prints\n"
      "                        predicted comm splits, findings, race verdicts\n"
      "  --with-run            with --lint: also profile the program so the\n"
      "                        static-vs-dynamic differential is reported\n"
      "  --fast                compile with the --fast pipeline\n"
      "  --threshold N         PMU overflow threshold (virtual cycles)\n"
      "  --workers N           worker streams (default 12)\n"
      "  --pm-workers N        post-mortem worker threads (0 = hardware, 1 = sequential)\n"
      "  --config K=V          override a config const (repeatable)\n"
      "  --view V              data|code|pprof|hybrid|gui|baseline|csv|comm|commmatrix|locale\n"
      "                        (default data; locale requires --locales N)\n"
      "  --skid N              simulate PMU skid of N instructions\n"
      "  --reference-interp    use the tree-walking oracle instead of bytecode\n"
      "  --replay-threads N    replay eligible parallel regions on N OS threads\n"
      "  --locales N           simulate N locales (1..4096) and aggregate blame\n"
      "  --save-log PATH       write the raw monitoring dataset to PATH\n"
      "  --html PATH           write a standalone HTML report (the GUI) to PATH\n"
      "  --no-idle             do not sample idle workers\n"
      "  --echo                echo program writeln output\n"
      "  --time                print total virtual cycles\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string program;
  std::string view = "data";
  bool showTime = false;
  bool lintMode = false;
  bool lintWithRun = false;
  uint32_t numLocales = 1;
  bool localesSet = false;
  std::string saveLogPath;
  std::string htmlPath;
  cb::Profiler profiler;
  profiler.options().run.sampleThreshold = 9973;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--lint") {
      lintMode = true;
    } else if (arg == "--with-run") {
      lintWithRun = true;
    } else if (arg == "--fast") {
      profiler.options().compile.fast = true;
      profiler.options().run.fastCostProfile = true;
    } else if (arg == "--threshold") {
      profiler.options().run.sampleThreshold = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--workers") {
      profiler.options().run.numWorkers = static_cast<uint32_t>(std::stoul(next()));
    } else if (arg == "--pm-workers") {
      profiler.options().postmortem.workers = static_cast<uint32_t>(std::stoul(next()));
    } else if (arg == "--config") {
      std::string kv = next();
      size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        usage();
        return 2;
      }
      profiler.options().run.configOverrides[kv.substr(0, eq)] = kv.substr(eq + 1);
    } else if (arg == "--view") {
      view = next();
    } else if (arg == "--skid") {
      profiler.options().run.skidInstructions = static_cast<uint32_t>(std::stoul(next()));
    } else if (arg == "--reference-interp") {
      profiler.options().run.referenceInterp = true;
    } else if (arg == "--replay-threads") {
      profiler.options().run.replayThreads = static_cast<uint32_t>(std::stoul(next()));
    } else if (arg == "--locales") {
      uint64_t requested = std::strtoull(next().c_str(), nullptr, 10);
      if (std::string err = cb::validateLocaleCount(requested); !err.empty()) {
        std::cerr << "error: --locales: " << err << "\n";
        return 2;
      }
      numLocales = static_cast<uint32_t>(requested);
      localesSet = true;
    } else if (arg == "--save-log") {
      saveLogPath = next();
    } else if (arg == "--html") {
      htmlPath = next();
    } else if (arg == "--no-idle") {
      profiler.options().run.sampleIdle = false;
    } else if (arg == "--echo") {
      profiler.options().run.echoWriteln = true;
    } else if (arg == "--time") {
      showTime = true;
    } else if (arg.rfind("--", 0) == 0 || !program.empty()) {
      // Unknown flag, or a second positional argument.
      usage();
      return 2;
    } else {
      program = arg;
    }
  }
  if (program.empty()) {
    usage();
    return 2;
  }

  std::string path = program.size() > 5 && program.substr(program.size() - 5) == ".chpl"
                         ? program
                         : cb::assetProgram(program);

  if (lintMode) {
    // Static analysis defaults to a 4-locale model so distribution effects
    // are visible even without an explicit --locales; the override wins.
    uint32_t lintLocales = localesSet ? numLocales : 4;
    profiler.options().run.numLocales = lintLocales;
    bool ok = lintWithRun ? profiler.profileFile(path) : profiler.compileFile(path);
    if (!ok) {
      std::cerr << "error:\n" << profiler.lastError() << "\n";
      return 1;
    }
    std::cout << profiler.lintText();
    return 0;
  }

  if (numLocales > 1) {
    cb::MultiLocaleResult ml = cb::profileMultiLocale(path, numLocales, profiler.options());
    if (!ml.ok) {
      // Partial profiles (some locales failed) still print their aggregate;
      // only a total failure is fatal.
      bool anyOk = false;
      for (const std::string& e : ml.localeErrors) anyOk |= e.empty();
      if (!anyOk) {
        std::cerr << "error:\n" << ml.error << "\n";
        return 1;
      }
      std::cerr << "warning (partial profile):\n" << ml.error << "\n";
    }
    if (view == "comm") {
      std::cout << cb::rpt::commView(ml.aggregate, profiler.options().view);
    } else if (view == "commmatrix") {
      std::cout << cb::rpt::commMatrixView(ml.aggregate, profiler.options().view);
    } else if (view == "locale") {
      std::cout << cb::rpt::perLocaleView(ml.perLocale, profiler.options().view);
    } else {
      std::cout << "Aggregated blame across " << numLocales << " locales:\n"
                << cb::rpt::dataCentricView(ml.aggregate, profiler.options().view);
    }
    return 0;
  }

  if (!profiler.profileFile(path)) {
    std::cerr << "error:\n" << profiler.lastError() << "\n";
    return 1;
  }
  if (!saveLogPath.empty() &&
      !cb::sampling::saveRunLog(profiler.runResult()->log, saveLogPath)) {
    std::cerr << "error: cannot write " << saveLogPath << "\n";
    return 1;
  }
  if (!htmlPath.empty() && !cb::rpt::writeHtmlReport(htmlPath, program, *profiler.blameReport(),
                                                     *profiler.codeReport())) {
    std::cerr << "error: cannot write " << htmlPath << "\n";
    return 1;
  }

  if (view == "data") std::cout << profiler.dataCentricText();
  else if (view == "code") std::cout << profiler.codeCentricText();
  else if (view == "pprof") std::cout << profiler.pprofText(program);
  else if (view == "hybrid") std::cout << profiler.hybridText();
  else if (view == "gui") std::cout << profiler.guiText();
  else if (view == "baseline") std::cout << cb::rpt::baselineView(profiler.baselineReport());
  else if (view == "csv") std::cout << cb::rpt::dataCentricCsv(*profiler.blameReport());
  else if (view == "comm") std::cout << cb::rpt::commView(*profiler.blameReport(),
                                                          profiler.options().view);
  else if (view == "commmatrix") std::cout << cb::rpt::commMatrixView(*profiler.blameReport(),
                                                                      profiler.options().view);
  else {
    usage();
    return 2;
  }

  if (showTime) {
    std::cout << "total virtual cycles: " << profiler.runResult()->totalCycles << "\n";
    std::cout << "instructions executed: " << profiler.runResult()->instructionsExecuted << "\n";
  }
  return 0;
}
