// LULESH: why data-centric beats code-centric (paper §V.C + Fig. 4).
//
// The code-centric (pprof-style) profile of LULESH is dominated by
// __sched_yield and anonymous task functions — the only recognizable user
// function is CalcElemNodeNormals at a few percent. The blame view of the
// SAME run names the variables (hgfx, hourgam, determ, dvdx, b_x) and the
// functions that define them, which is what led the paper's authors to the
// P1 / VG / CENN optimizations.
#include <cstdio>

#include "core/lulesh_variants.h"
#include "core/profiler.h"

int main() {
  cb::Profiler p;
  if (!p.profileFile(cb::assetProgram("lulesh"))) {
    std::fprintf(stderr, "%s\n", p.lastError().c_str());
    return 1;
  }

  std::printf("=== What a code-centric profiler shows (gperftools pprof) ===\n\n");
  std::printf("%s\n", p.pprofText("lulesh").c_str());
  std::printf(
      "__sched_yield and the tasking layer dominate; nothing here says which\n"
      "DATA is responsible.\n\n");

  std::printf("=== What the blame profiler shows for the same run ===\n\n");
  std::printf("%s\n", p.dataCentricText().c_str());

  std::printf("=== Acting on it: the paper's three optimizations ===\n\n");
  auto cyclesOf = [](const cb::LuleshVariant& v) {
    cb::Profiler q;
    q.options().run.sampleThreshold = 0;
    if (!q.compileString("lulesh.chpl", cb::luleshSource(v)) || !q.run()) {
      std::fprintf(stderr, "%s\n", q.lastError().c_str());
      std::exit(1);
    }
    return q.runResult()->totalCycles;
  };
  uint64_t base = cyclesOf(cb::LuleshVariant::original());
  struct Opt {
    const char* name;
    cb::LuleshVariant v;
    const char* what;
  };
  for (const Opt& o : {
           Opt{"P 1", {true, false, false, false, false},
               "keep `param` only on the Fig. 5 outer loop (hourgam/hourmod*)"},
           Opt{"VG", {true, true, true, true, false},
               "globalize determ/dvdx/sig/x8n (allocated once, not per call)"},
           Opt{"CENN", {true, true, true, false, true},
               "assign face normals directly into b_x/b_y/b_z (no tuple temps)"},
           Opt{"Best", cb::LuleshVariant::best(), "all three combined"},
       }) {
    uint64_t c = cyclesOf(o.v);
    std::printf("%-5s %.3fx  — %s\n", o.name, static_cast<double>(base) / c, o.what);
  }
  std::printf("(paper: P1 1.07x, VG 1.25x, CENN 1.08x, Best 1.38x)\n");
  return 0;
}
