// CLOMP case study (paper §V.B): hierarchical blame on nested data
// structures, across problem shapes.
//
// Shows the tool's unique capability — the "->" rows that walk INTO
// partArray and say which *field* of the nested structure is hot — and how
// the flat-2D-array rewrite pays off differently per problem shape.
#include <cstdio>
#include <string>

#include "core/profiler.h"
#include "support/table.h"

namespace {

cb::Profiler profileClomp(const char* prog, int parts, int zones) {
  cb::Profiler p;
  p.options().run.configOverrides["CLOMP_numParts"] = std::to_string(parts);
  p.options().run.configOverrides["CLOMP_zonesPerPart"] = std::to_string(zones);
  p.options().run.configOverrides["CLOMP_timeScale"] = "2";
  if (!p.profileFile(cb::assetProgram(prog))) {
    std::fprintf(stderr, "%s failed:\n%s\n", prog, p.lastError().c_str());
    std::exit(1);
  }
  return p;
}

}  // namespace

int main() {
  std::printf("=== Hierarchical blame for CLOMP (64 parts x 500 zones) ===\n\n");
  cb::Profiler p = profileClomp("clomp", 64, 500);
  std::printf("%s\n", p.dataCentricText().c_str());
  std::printf(
      "Reading the hierarchy: partArray holds ~everything; following the ->\n"
      "rows shows the zoneArray[j].value field is where the cycles go, while\n"
      "residue and the update_part locals are minor. That points directly at\n"
      "the nested-structure access pattern, which the flat-array rewrite\n"
      "(clomp_opt.chpl) removes.\n\n");

  std::printf("=== Speedup of the flat-array rewrite across problem shapes ===\n\n");
  cb::TextTable t({"parts x zones/part", "original (cycles)", "flat 2D (cycles)", "speedup"});
  struct Shape {
    int parts, zones;
  };
  for (Shape s : {Shape{32, 1000}, Shape{512, 64}, Shape{2048, 8}}) {
    cb::Profiler orig = profileClomp("clomp", s.parts, s.zones);
    cb::Profiler opt = profileClomp("clomp_opt", s.parts, s.zones);
    double speedup = static_cast<double>(orig.runResult()->totalCycles) /
                     static_cast<double>(opt.runResult()->totalCycles);
    t.addRow({std::to_string(s.parts) + " x " + std::to_string(s.zones),
              std::to_string(orig.runResult()->totalCycles),
              std::to_string(opt.runResult()->totalCycles), cb::formatFixed(speedup, 2) + "x"});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nZone-heavy shapes gain ~2x; with few zones per part the per-part\n"
              "overheads dominate and the gain shrinks (the paper's Table V shape).\n");
  return 0;
}
