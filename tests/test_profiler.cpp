// Integration tests of the Profiler facade and the bundled benchmark
// programs (the paper's case studies).
#include <gtest/gtest.h>

#include "core/lulesh_variants.h"
#include "test_util.h"

namespace cb {
namespace {

TEST(Profiler, StageOrderingIsEnforced) {
  Profiler p;
  EXPECT_FALSE(p.analyze());
  EXPECT_FALSE(p.run());
  EXPECT_FALSE(p.postProcess());
  EXPECT_FALSE(p.lastError().empty());
}

TEST(Profiler, CompileErrorIsReported) {
  Profiler p;
  EXPECT_FALSE(p.compileString("bad.chpl", "proc main() { writeln(undefined_thing); }"));
  EXPECT_NE(p.lastError().find("unknown identifier"), std::string::npos);
}

TEST(Profiler, RuntimeErrorIsReported) {
  Profiler p;
  p.options().run.sampleThreshold = 0;
  EXPECT_FALSE(p.profileString("bad.chpl",
                               "const D = {0..#4};\nvar A: [D] int;\nproc main() { A[99] = 1; }"));
  EXPECT_NE(p.lastError().find("out of bounds"), std::string::npos);
}

TEST(Profiler, MissingAssetFileFails) {
  Profiler p;
  EXPECT_FALSE(p.compileFile("/no/such/file.chpl"));
}

TEST(Profiler, BundledProgramsCompile) {
  for (const char* prog : {"example", "clomp", "clomp_opt", "minimd", "minimd_opt", "lulesh"}) {
    Profiler p;
    EXPECT_TRUE(p.compileFile(assetProgram(prog))) << prog << ": " << p.lastError();
  }
}

TEST(Profiler, OptimizedVariantsMatchOriginalOutputs) {
  // The case-study optimizations must preserve program results exactly.
  for (auto [orig, opt] : {std::pair{"clomp", "clomp_opt"}, std::pair{"minimd", "minimd_opt"}}) {
    Profiler a, b;
    a.options().run.sampleThreshold = 0;
    b.options().run.sampleThreshold = 0;
    ASSERT_TRUE(a.compileFile(assetProgram(orig)) && a.run()) << a.lastError();
    ASSERT_TRUE(b.compileFile(assetProgram(opt)) && b.run()) << b.lastError();
    EXPECT_EQ(a.runResult()->output, b.runResult()->output) << orig;
    EXPECT_LT(b.runResult()->totalCycles, a.runResult()->totalCycles)
        << opt << " must be faster";
  }
}

TEST(Profiler, LuleshVariantsPreserveChecksum) {
  std::string expected;
  for (const LuleshVariant& v :
       {LuleshVariant::original(), LuleshVariant::noParams(), LuleshVariant::best(),
        LuleshVariant{true, true, true, true, false}, LuleshVariant{true, true, true, false, true}}) {
    Profiler p;
    p.options().run.sampleThreshold = 0;
    ASSERT_TRUE(p.compileString("lulesh.chpl", luleshSource(v)) && p.run()) << p.lastError();
    if (expected.empty()) expected = p.runResult()->output;
    else EXPECT_EQ(p.runResult()->output, expected);
  }
}

TEST(Profiler, LuleshBestIsFastest) {
  uint64_t orig, best;
  {
    Profiler p;
    p.options().run.sampleThreshold = 0;
    ASSERT_TRUE(p.compileString("l.chpl", luleshSource(LuleshVariant::original())) && p.run());
    orig = p.runResult()->totalCycles;
  }
  {
    Profiler p;
    p.options().run.sampleThreshold = 0;
    ASSERT_TRUE(p.compileString("l.chpl", luleshSource(LuleshVariant::best())) && p.run());
    best = p.runResult()->totalCycles;
  }
  EXPECT_LT(best, orig);
}

TEST(Profiler, Fig1BlameMatchesTableI) {
  Profiler p;
  p.options().run.sampleThreshold = 7;
  ASSERT_TRUE(p.profileFile(assetProgram("example"))) << p.lastError();
  EXPECT_EQ(test::blameLinesOf(p, "main", "a", 16, 20), (std::set<uint32_t>{16, 18, 19}));
  EXPECT_EQ(test::blameLinesOf(p, "main", "b", 16, 20), (std::set<uint32_t>{17}));
  EXPECT_EQ(test::blameLinesOf(p, "main", "c", 16, 20),
            (std::set<uint32_t>{16, 17, 18, 19, 20}));
}

TEST(Profiler, ClompBlameShape) {
  Profiler p;
  ASSERT_TRUE(p.profileFile(assetProgram("clomp"))) << p.lastError();
  const pm::BlameReport& r = *p.blameReport();
  const pm::VariableBlame* partArray = r.find("partArray");
  const pm::VariableBlame* value = r.find("->partArray[i].zoneArray[j].value");
  const pm::VariableBlame* residue = r.find("->partArray[i].residue");
  const pm::VariableBlame* remaining = r.find("remaining_deposit");
  ASSERT_NE(partArray, nullptr);
  ASSERT_NE(value, nullptr);
  ASSERT_NE(residue, nullptr);
  ASSERT_NE(remaining, nullptr);
  // Table IV's shape: the hierarchy dominates; residue/remaining are minor.
  EXPECT_GT(partArray->percent, 90.0);
  EXPECT_GT(value->percent, 80.0);
  EXPECT_GT(partArray->percent, residue->percent);
  EXPECT_LT(remaining->percent, 50.0);
  EXPECT_EQ(remaining->context, "update_part");
}

TEST(Profiler, MinimdBlameShape) {
  Profiler p;
  ASSERT_TRUE(p.profileFile(assetProgram("minimd"))) << p.lastError();
  const pm::BlameReport& r = *p.blameReport();
  for (const char* name : {"Pos", "Bins", "RealPos", "RealCount", "Count", "binSpace"})
    ASSERT_NE(r.find(name), nullptr) << name;
  // Table II's shape: Pos/Bins/RealPos top; Count and binSpace mid-range.
  EXPECT_GT(r.find("Pos")->percent, 90.0);
  EXPECT_GT(r.find("Bins")->percent, 80.0);
  EXPECT_GT(r.find("Pos")->percent, r.find("Count")->percent);
  EXPECT_GT(r.find("binSpace")->percent, 20.0);
  EXPECT_LT(r.find("binSpace")->percent, 80.0);
}

TEST(Profiler, LuleshBlameListsTableVIVariables) {
  Profiler p;
  ASSERT_TRUE(p.profileFile(assetProgram("lulesh"))) << p.lastError();
  const pm::BlameReport& r = *p.blameReport();
  struct Expect {
    const char* name;
    const char* context;
  };
  for (const Expect& e : std::initializer_list<Expect>{
           {"hgfx", "CalcFBHourglassForceForElems"},
           {"hourgam", "CalcFBHourglassForceForElems"},
           {"hourmodx", "CalcFBHourglassForceForElems"},
           {"shx", "CalcElemFBHourglassForce"},
           {"hx", "CalcElemFBHourglassForce"},
           {"determ", "CalcVolumeForceForElems"},
           {"dvdx", "CalcHourglassControlForElems"},
           {"b_x", "IntegrateStressForElems"}}) {
    const pm::VariableBlame* row = r.find(e.name);
    ASSERT_NE(row, nullptr) << e.name;
    EXPECT_EQ(row->context, e.context) << e.name;
    EXPECT_GT(row->percent, 0.0) << e.name;
  }
}

TEST(Profiler, LuleshPprofDominatedByRuntimeFrames) {
  Profiler p;
  ASSERT_TRUE(p.profileFile(assetProgram("lulesh"))) << p.lastError();
  const rpt::CodeCentricReport& r = *p.codeReport();
  ASSERT_FALSE(r.rows.empty());
  EXPECT_EQ(r.rows[0].function, "__sched_yield") << rpt::pprofView(r, "lulesh");
  EXPECT_GT(100.0 * r.rows[0].self / r.totalSamples, 40.0);
}

TEST(Profiler, BaselineUnknownDataReproducesMotivation) {
  for (const char* prog : {"clomp", "lulesh"}) {
    Profiler p;
    ASSERT_TRUE(p.profileFile(assetProgram(prog))) << p.lastError();
    EXPECT_GT(p.baselineReport().unknownPercent, 85.0) << prog;
  }
}

TEST(Profiler, VariantAnchorsAbortIfSourceDrifts) {
  // luleshSource() must track the bundled source; a smoke call per variant.
  EXPECT_FALSE(luleshSource(LuleshVariant::best()).empty());
  EXPECT_NE(luleshSource({false, false, false, false, false}).find("for j in 1..4 {"),
            std::string::npos);
}

}  // namespace
}  // namespace cb
