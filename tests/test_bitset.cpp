// Tests of the dense/sparse bit-set containers and the SCC-condensation
// propagation engine that replaced the seed's Jacobi fixpoint.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "analysis/propagation.h"
#include "core/profiler.h"
#include "support/bitset.h"
#include "support/rng.h"

namespace cb {
namespace {

std::vector<uint32_t> toVec(const BitSet& b) { return {b.begin(), b.end()}; }

TEST(BitSet, EmptyHasNoBitsAndIteratesNothing) {
  BitSet b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_FALSE(b.test(0));
  EXPECT_FALSE(b.test(1000));
  EXPECT_EQ(toVec(b), std::vector<uint32_t>{});
  EXPECT_EQ(b, BitSet(128));  // capacity hints don't affect equality
}

TEST(BitSet, SingleBitAtEdgeSizes) {
  for (uint32_t i : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 4096u}) {
    BitSet b;
    EXPECT_TRUE(b.insert(i));
    EXPECT_FALSE(b.insert(i)) << "second insert of " << i;
    EXPECT_TRUE(b.test(i));
    EXPECT_FALSE(b.test(i + 1));
    if (i > 0) EXPECT_FALSE(b.test(i - 1));
    EXPECT_EQ(b.size(), 1u);
    EXPECT_EQ(toVec(b), std::vector<uint32_t>{i});
  }
}

TEST(BitSet, IterationIsAscendingLikeStdSet) {
  BitSet b;
  std::set<uint32_t> ref;
  Rng rng(42);
  for (int i = 0; i < 300; ++i) {
    uint32_t v = static_cast<uint32_t>(rng.nextBounded(1000));
    EXPECT_EQ(b.insert(v), ref.insert(v).second);
  }
  EXPECT_EQ(b.size(), ref.size());
  EXPECT_EQ(toVec(b), std::vector<uint32_t>(ref.begin(), ref.end()));
}

TEST(BitSet, UnionWithReportsChangeAndGrows) {
  BitSet a, b;
  a.insert(1);
  a.insert(64);
  b.insert(64);
  b.insert(200);
  EXPECT_TRUE(a.unionWith(b));
  EXPECT_FALSE(a.unionWith(b));  // already a superset
  EXPECT_EQ(toVec(a), (std::vector<uint32_t>{1, 64, 200}));
  EXPECT_EQ(a.size(), 3u);
  BitSet empty;
  EXPECT_FALSE(a.unionWith(empty));
  EXPECT_TRUE(empty.unionWith(a));
  EXPECT_EQ(empty, a);
}

TEST(BitSet, RangeInsertAndEquality) {
  std::vector<uint32_t> vals{5, 0, 65, 64, 5};
  BitSet a;
  a.insert(vals.begin(), vals.end());
  EXPECT_EQ(toVec(a), (std::vector<uint32_t>{0, 5, 64, 65}));
  BitSet b;
  for (uint32_t v : {0u, 5u, 64u, 65u}) b.insert(v);
  EXPECT_EQ(a, b);
  b.insert(66);
  EXPECT_FALSE(a == b);
}

TEST(SparseBitSet, InsertKeepsSortedUnique) {
  SparseBitSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(10));
  EXPECT_TRUE(s.insert(3));
  EXPECT_TRUE(s.insert(700000));  // wide universe is fine
  EXPECT_FALSE(s.insert(10));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(std::vector<uint32_t>(s.begin(), s.end()), (std::vector<uint32_t>{3, 10, 700000}));
}

TEST(SparseBitSet, UnionWith) {
  SparseBitSet a, b;
  a.insert(1);
  a.insert(5);
  b.insert(5);
  b.insert(2);
  EXPECT_TRUE(a.unionWith(b));
  EXPECT_FALSE(a.unionWith(b));
  EXPECT_EQ(std::vector<uint32_t>(a.begin(), a.end()), (std::vector<uint32_t>{1, 2, 5}));
  SparseBitSet empty;
  EXPECT_FALSE(a.unionWith(empty));
}

// ---------------------------------------------------------------------------
// SCC engine.
// ---------------------------------------------------------------------------

std::vector<SparseBitSet> makeEdges(size_t n, std::initializer_list<std::pair<int, int>> es) {
  std::vector<SparseBitSet> edges(n);
  for (auto [a, b] : es) edges[a].insert(static_cast<uint32_t>(b));
  return edges;
}

TEST(TarjanScc, ComponentsComeOutInDependencyOrder) {
  // 0 -> 1 -> 2, cycle {3,4} -> 2.
  auto edges = makeEdges(5, {{0, 1}, {1, 2}, {3, 4}, {4, 3}, {4, 2}});
  an::SccResult scc = an::tarjanScc(5, edges);
  ASSERT_EQ(scc.comp.size(), 5u);
  EXPECT_EQ(scc.comp[3], scc.comp[4]);
  EXPECT_NE(scc.comp[0], scc.comp[1]);
  // Every edge points to an equal-or-smaller component id (deps first).
  for (uint32_t v = 0; v < 5; ++v)
    for (uint32_t w : edges[v]) EXPECT_LE(scc.comp[w], scc.comp[v]) << v << "->" << w;
}

TEST(TarjanScc, LongChainDoesNotOverflowTheStack) {
  // 100k-node chain — the recursive formulation would crash here.
  size_t n = 100000;
  std::vector<SparseBitSet> edges(n);
  for (uint32_t v = 0; v + 1 < n; ++v) edges[v].insert(v + 1);
  an::SccResult scc = an::tarjanScc(n, edges);
  EXPECT_EQ(scc.components.size(), n);
}

// ---------------------------------------------------------------------------
// Property: SCC propagation == retained Jacobi reference on random graphs.
// ---------------------------------------------------------------------------

class PropertyPropagation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertyPropagation, SccMatchesReferenceFixpointOnRandomGraphs) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    size_t n = 1 + rng.nextBounded(60);
    size_t nEdges = rng.nextBounded(4 * n);
    std::vector<SparseBitSet> edges(n);
    for (size_t i = 0; i < nEdges; ++i)
      edges[rng.nextBounded(n)].insert(static_cast<uint32_t>(rng.nextBounded(n)));

    std::vector<BitSet> seeds(n);
    for (size_t e = 0; e < n; ++e) {
      size_t bits = rng.nextBounded(6);
      for (size_t b = 0; b < bits; ++b)
        seeds[e].insert(static_cast<uint32_t>(rng.nextBounded(500)));
    }

    std::vector<BitSet> scc = seeds;
    std::vector<BitSet> ref = seeds;
    an::propagateInherits(scc, edges);
    an::propagateInheritsReference(ref, edges);
    for (size_t e = 0; e < n; ++e)
      EXPECT_EQ(toVec(scc[e]), toVec(ref[e])) << "trial " << trial << " entity " << e;
  }
}

TEST_P(PropertyPropagation, CyclesConvergeToSharedUnion) {
  // Dense random cycles: every member of one SCC must end with an identical
  // set (they reach the same nodes).
  Rng rng(GetParam() ^ 0xC1C1Eull);
  size_t n = 12;
  std::vector<SparseBitSet> edges(n);
  for (uint32_t v = 0; v < n; ++v) edges[v].insert((v + 1) % n);  // one big ring
  for (int extra = 0; extra < 6; ++extra)
    edges[rng.nextBounded(n)].insert(static_cast<uint32_t>(rng.nextBounded(n)));
  std::vector<BitSet> sets(n);
  for (uint32_t v = 0; v < n; ++v) sets[v].insert(v);
  an::propagateInherits(sets, edges);
  for (size_t v = 1; v < n; ++v) EXPECT_EQ(sets[v], sets[0]);
  EXPECT_EQ(sets[0].size(), n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyPropagation,
                         ::testing::Values(11ull, 2026ull, 0xFEEDFACEull));

// ---------------------------------------------------------------------------
// End-to-end oracle: the full static analysis run with SCC propagation is
// bit-identical to the retained reference fixpoint on the paper corpus.
// ---------------------------------------------------------------------------

class PropagationCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(PropagationCorpus, SccAnalysisMatchesReferenceFixpoint) {
  Profiler p;
  ASSERT_TRUE(p.compileFile(assetProgram(GetParam()))) << p.lastError();
  const ir::Module& m = p.compilation()->module();
  an::BlameOptions ref;
  ref.referenceFixpoint = true;
  an::ModuleBlame fast = an::analyzeModule(m);
  an::ModuleBlame slow = an::analyzeModule(m, ref);
  ASSERT_EQ(fast.functions.size(), slow.functions.size());
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    const an::FunctionBlame& a = fast.fn(f);
    const an::FunctionBlame& b = slow.fn(f);
    ASSERT_EQ(a.entities.size(), b.entities.size()) << "func " << f;
    for (an::EntityId e = 0; e < a.entities.size(); ++e) {
      EXPECT_EQ(a.blameInstrs[e], b.blameInstrs[e]) << "func " << f << " entity " << e;
      EXPECT_EQ(a.regionInstrs[e], b.regionInstrs[e]) << "func " << f << " entity " << e;
      EXPECT_EQ(a.blameLines(m, e), b.blameLines(m, e)) << "func " << f << " entity " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, PropagationCorpus,
                         ::testing::Values("example", "clomp", "minimd", "lulesh"));

}  // namespace
}  // namespace cb
