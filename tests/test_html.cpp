// Tests of the HTML report exporter (the Fig. 3 GUI stand-in).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "report/html.h"
#include "test_util.h"

namespace cb {
namespace {

Profiler profiled() {
  ProfileOptions o;
  o.run.sampleThreshold = 101;
  return test::profileSource(
      "const D = {0..#64};\nvar A: [D] real;\n"
      "proc kernel() { forall i in D { var t = 0.0; for j in 0..#40 { t += i * j; } A[i] = t; "
      "} }\nproc main() { kernel(); }",
      o);
}

TEST(Html, ContainsAllThreePanes) {
  Profiler p = profiled();
  std::string html = rpt::htmlReport("prog", *p.blameReport(), *p.codeReport());
  EXPECT_NE(html.find("Data-centric (blame)"), std::string::npos);
  EXPECT_NE(html.find("Code-centric"), std::string::npos);
  EXPECT_NE(html.find("blame point: <code>main</code>"), std::string::npos);
}

TEST(Html, ListsVariablesAndFunctions) {
  Profiler p = profiled();
  std::string html = rpt::htmlReport("prog", *p.blameReport(), *p.codeReport());
  EXPECT_NE(html.find("<code>A</code>"), std::string::npos);
  EXPECT_NE(html.find("<code>kernel</code>"), std::string::npos);
}

TEST(Html, EscapesMarkup) {
  pm::BlameReport blame;
  blame.totalUserSamples = 1;
  blame.rows.push_back({"->a<b>[i]", "8*real", "main", 1, 50.0});
  rpt::CodeCentricReport code;
  code.totalSamples = 1;
  std::string html = rpt::htmlReport("x<y>", blame, code);
  EXPECT_EQ(html.find("<b>[i]"), std::string::npos);
  EXPECT_NE(html.find("&lt;b&gt;"), std::string::npos);
}

TEST(Html, WritesToFile) {
  Profiler p = profiled();
  std::string path = ::testing::TempDir() + "/cb_report.html";
  ASSERT_TRUE(rpt::writeHtmlReport(path, "prog", *p.blameReport(), *p.codeReport()));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string first;
  std::getline(f, first);
  EXPECT_EQ(first.rfind("<!doctype html>", 0), 0u);
  std::remove(path.c_str());
}

TEST(Html, RejectsUnwritablePath) {
  pm::BlameReport blame;
  rpt::CodeCentricReport code;
  EXPECT_FALSE(rpt::writeHtmlReport("/no/such/dir/x.html", "p", blame, code));
}

}  // namespace
}  // namespace cb
