// Tests of the post-mortem pipeline: trace gluing, instance resolution,
// interprocedural blame attribution, contexts, and the baseline profiler.
#include <gtest/gtest.h>

#include "postmortem/baseline.h"
#include "test_util.h"

namespace cb {
namespace {

using test::profileSource;

const char* kForallProgram = R"(const D = {0..#64};
var A: [D] real;
proc kernel() {
  forall i in D {
    var t = 0.0;
    for j in 0..#40 {
      t += i * j;
    }
    A[i] = t;
  }
}
proc main() {
  kernel();
}
)";

ProfileOptions denseSampling() {
  ProfileOptions o;
  o.run.sampleThreshold = 101;
  return o;
}

TEST(Postmortem, GluedInstancesReachMain) {
  Profiler p = profileSource(kForallProgram, denseSampling());
  bool sawFullPath = false;
  for (const pm::Instance& inst : *p.instances()) {
    if (inst.idle || inst.frames.size() < 3) continue;
    if (inst.frames.front().funcName == "main" && inst.frames[1].funcName == "kernel")
      sawFullPath = true;
  }
  EXPECT_TRUE(sawFullPath) << "worker samples must glue back to main -> kernel";
}

TEST(Postmortem, FramesCarryFileAndLine) {
  Profiler p = profileSource(kForallProgram, denseSampling());
  for (const pm::Instance& inst : *p.instances()) {
    if (inst.idle) continue;
    for (const pm::ResolvedFrame& fr : inst.frames) {
      EXPECT_FALSE(fr.funcName.empty());
      EXPECT_GT(fr.line, 0u);
    }
  }
}

TEST(Postmortem, UnGluedInstancesLoseContext) {
  ProfileOptions o = denseSampling();
  o.consolidate.glueSpawns = false;
  Profiler p = profileSource(kForallProgram, o);
  for (const pm::Instance& inst : *p.instances()) {
    if (inst.idle || inst.frames.empty()) continue;
    // Worker instances start at the task function, never at main.
    if (inst.frames.front().funcName.find("forall_fn") == 0)
      EXPECT_NE(inst.frames.front().funcName, "main");
  }
}

TEST(Postmortem, BlameBubblesToCallerVariable) {
  Profiler p = profileSource(R"(const D = {0..#256};
proc fill(A: [D] real, v: real) {
  for i in D {
    A[i] = v + i;
  }
}
proc main() {
  var data: [D] real;
  fill(data, 0.5);
  writeln(data[0]);
}
)",
                             denseSampling());
  const pm::VariableBlame* row = p.blameReport()->find("data");
  ASSERT_NE(row, nullptr) << p.dataCentricText();
  EXPECT_GT(row->percent, 50.0);
  EXPECT_EQ(row->context, "main");
}

TEST(Postmortem, GlobalsReportMainContext) {
  Profiler p = profileSource(kForallProgram, denseSampling());
  const pm::VariableBlame* row = p.blameReport()->find("A");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->context, "main");
}

TEST(Postmortem, TaskLocalsReportEnclosingUserFunction) {
  Profiler p = profileSource(kForallProgram, denseSampling());
  const pm::VariableBlame* row = p.blameReport()->find("t");
  ASSERT_NE(row, nullptr) << p.dataCentricText();
  EXPECT_EQ(row->context, "kernel");
}

TEST(Postmortem, PercentagesAreSane) {
  Profiler p = profileSource(kForallProgram, denseSampling());
  const pm::BlameReport& r = *p.blameReport();
  EXPECT_GT(r.totalUserSamples, 0u);
  for (const pm::VariableBlame& row : r.rows) {
    EXPECT_GE(row.percent, 0.0);
    EXPECT_LE(row.percent, 100.0);
    EXPECT_LE(row.sampleCount, r.totalUserSamples);
  }
}

TEST(Postmortem, SumOfBlameCanExceed100) {
  // §III: "the total percentage assigned to all variables can possibly be
  // more than 100%".
  Profiler p = profileSource(kForallProgram, denseSampling());
  double sum = 0;
  for (const pm::VariableBlame& row : p.blameReport()->rows) sum += row.percent;
  EXPECT_GT(sum, 100.0);
}

TEST(Postmortem, RowsSortedDescending) {
  Profiler p = profileSource(kForallProgram, denseSampling());
  const auto& rows = p.blameReport()->rows;
  for (size_t i = 1; i < rows.size(); ++i)
    EXPECT_GE(rows[i - 1].sampleCount, rows[i].sampleCount);
}

TEST(Postmortem, InterproceduralOffKeepsBlameLocal) {
  ProfileOptions o = denseSampling();
  o.attribution.interprocedural = false;
  Profiler p = profileSource(R"(const D = {0..#256};
proc fill(ref A: [D] real) {
  for i in D {
    A[i] = i * 0.5;
  }
}
proc main() {
  var data: [D] real;
  fill(data);
  writeln(data[0]);
}
)",
                             o);
  // Without bubbling, the callee formal A carries the blame instead of data.
  const pm::VariableBlame* formal = p.blameReport()->find("A");
  ASSERT_NE(formal, nullptr);
  EXPECT_EQ(formal->context, "fill");
}

TEST(Postmortem, BaselineFilesMostUnderUnknownData) {
  Profiler p = profileSource(kForallProgram, denseSampling());
  pm::BaselineReport b = p.baselineReport();
  EXPECT_GT(b.unknownPercent, 50.0);
  ASSERT_FALSE(b.rows.empty());
}

TEST(Postmortem, BaselineTracksLargeLocalArraysOnly) {
  // A >= 4KB local array directly indexed at the leaf is attributable; the
  // global A (Chapel-style module variable) is not.
  Profiler p = profileSource(R"(const D = {0..#1024};
proc main() {
  var big: [D] real;
  var s = 0.0;
  for r in 0..#50 {
    for i in D {
      big[i] = i * 1.5;
      s += big[i];
    }
  }
  writeln(s);
}
)",
                             denseSampling());
  pm::BaselineReport b = p.baselineReport();
  bool sawBig = false;
  for (const pm::BaselineRow& row : b.rows)
    if (row.name == "big" && row.sampleCount > 0) sawBig = true;
  EXPECT_TRUE(sawBig) << rpt::baselineView(b);
}

TEST(Postmortem, UserContextNameSkipsTaskFunctions) {
  Profiler p = profileSource(kForallProgram, denseSampling());
  const ir::Module& m = p.compilation()->module();
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    if (m.function(f).isTaskFn())
      EXPECT_EQ(pm::userContextName(m, f), "kernel");
  }
  EXPECT_EQ(pm::userContextName(m, m.mainFunc), "main");
}

TEST(Postmortem, FastModeRefusesDataCentric) {
  ProfileOptions o = denseSampling();
  o.compile.fast = true;
  o.run.fastCostProfile = true;
  Profiler p(o);
  ASSERT_TRUE(p.profileString("t.chpl", kForallProgram)) << p.lastError();
  // Data-centric attribution is refused (empty) but code-centric works.
  EXPECT_TRUE(p.blameReport()->rows.empty());
  EXPECT_FALSE(p.codeReport()->rows.empty());
}

}  // namespace
}  // namespace cb
