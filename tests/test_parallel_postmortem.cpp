// Tests of the parallel sharded post-mortem pipeline: thread-pool basics,
// concurrency smoke tests, the deterministic-merge tie-break, and the
// property-based shard-invariance suite (random logs, random shard counts —
// sharded result must equal the sequential one row for row).
//
// Suite naming feeds the CTest labels (see tests/CMakeLists.txt):
// ThreadPool.* / Parallel*.* carry the `parallel` label, Property*.* the
// `property` label.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "postmortem/parallel.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "test_util.h"

namespace cb {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();  // nothing submitted
  SUCCEED();
}

TEST(ThreadPool, JobsMaySubmitMoreJobs) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([&pool, &count] {
      pool.submit([&count] { ++count; });
    });
  pool.wait();
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ZeroRequestClampsToOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ThrowingJobSurfacesFromWait) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("job failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, FirstExceptionWinsAndOthersAreSwallowed) {
  ThreadPool pool(1);  // single worker => deterministic job order
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::logic_error("second"); });
  try {
    pool.wait();
    FAIL() << "wait() should rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPool, PoolRemainsUsableAfterException) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // A failed batch must not poison the pool: later batches run normally and
  // wait() no longer throws (the stored exception was consumed).
  for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, NonFailingJobsStillRunWhenOneThrows) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    if (i == 17)
      pool.submit([] { throw std::runtime_error("one bad job"); });
    else
      pool.submit([&count] { ++count; });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_EQ(count.load(), 99);
}

// ---------------------------------------------------------------------------
// Shard assignment
// ---------------------------------------------------------------------------

sampling::RunLog logOfAsset(const char* name, Profiler& p, uint64_t threshold = 9973) {
  p.options().run.sampleThreshold = threshold;
  p.options().postmortem.workers = 1;  // reference artifacts: sequential
  EXPECT_TRUE(p.profileFile(assetProgram(name))) << p.lastError();
  return p.runResult()->log;
}

TEST(ParallelSharding, PartitionsEverySampleExactlyOnce) {
  Profiler p;
  sampling::RunLog log = logOfAsset("clomp", p);
  for (uint32_t shards : {1u, 2u, 3u, 7u, 16u, 64u}) {
    auto plan = pm::shardSamples(log, shards);
    ASSERT_EQ(plan.size(), shards);
    std::vector<bool> seen(log.samples.size(), false);
    for (const auto& shard : plan) {
      for (size_t k = 0; k < shard.size(); ++k) {
        if (k > 0) {
          EXPECT_LT(shard[k - 1], shard[k]);  // ascending within a shard
        }
        ASSERT_LT(shard[k], log.samples.size());
        EXPECT_FALSE(seen[shard[k]]) << "sample in two shards";
        seen[shard[k]] = true;
      }
    }
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
  }
}

TEST(ParallelSharding, SameTaskStaysInOneShard) {
  Profiler p;
  sampling::RunLog log = logOfAsset("minimd", p);
  auto plan = pm::shardSamples(log, 8);
  std::unordered_map<uint64_t, size_t> tagShard;
  for (size_t s = 0; s < plan.size(); ++s) {
    for (uint32_t idx : plan[s]) {
      uint64_t tag = log.samples[idx].taskTag;
      if (tag == 0) continue;
      auto [it, inserted] = tagShard.emplace(tag, s);
      EXPECT_EQ(it->second, s) << "tag " << tag << " split across shards";
    }
  }
}

TEST(ParallelSharding, DeterministicAcrossCalls) {
  Profiler p;
  sampling::RunLog log = logOfAsset("example", p, 7);  // example is tiny: ~49 cycles
  EXPECT_TRUE(log.samples.size() > 0);
  EXPECT_EQ(pm::shardSamples(log, 5), pm::shardSamples(log, 5));
}

// ---------------------------------------------------------------------------
// Concurrency smoke tests
// ---------------------------------------------------------------------------

TEST(ParallelPostmortem, EmptyLogYieldsEmptyArtifacts) {
  auto c = test::compile("proc main() { writeln(1); }");
  an::ModuleBlame mb = an::analyzeModule(c->module(), {});
  sampling::RunLog empty;
  pm::ParallelOptions popts;
  popts.workers = 4;
  pm::PostmortemResult r = pm::runPostmortem(c->module(), &mb, empty, {}, {}, popts);
  EXPECT_TRUE(r.instances.empty());
  EXPECT_TRUE(r.report.rows.empty());
  EXPECT_EQ(r.report.totalRawSamples, 0u);
  EXPECT_EQ(r.report.totalUserSamples, 0u);
}

TEST(ParallelPostmortem, WorkersExceedShardsAndSamples) {
  Profiler p;
  sampling::RunLog log = logOfAsset("example", p, 7);  // tiny program: few samples
  ASSERT_GT(log.samples.size(), 0u);
  pm::ParallelOptions popts;
  popts.workers = static_cast<uint32_t>(log.samples.size()) + 5;  // workers > samples
  popts.shards = 2;                                               // workers > shards too
  pm::PostmortemResult r = pm::runPostmortem(p.compilation()->module(), p.moduleBlame(), log,
                                             {}, {}, popts);
  EXPECT_EQ(r.report, *p.blameReport());
  EXPECT_EQ(r.instances, *p.instances());
}

TEST(ParallelPostmortem, SingleSampleShards) {
  Profiler p;
  sampling::RunLog log = logOfAsset("example", p, 7);
  ASSERT_GT(log.samples.size(), 0u);
  pm::ParallelOptions popts;
  popts.workers = 4;
  popts.shards = static_cast<uint32_t>(log.samples.size() * 2 + 1);  // most shards empty
  pm::PostmortemResult r = pm::runPostmortem(p.compilation()->module(), p.moduleBlame(), log,
                                             {}, {}, popts);
  EXPECT_EQ(r.report, *p.blameReport());
  EXPECT_EQ(r.instances, *p.instances());
}

TEST(ParallelPostmortem, FastModeSkipsAttributionButConsolidates) {
  Profiler p;
  p.options().compile.fast = true;
  p.options().run.fastCostProfile = true;
  p.options().run.sampleThreshold = 997;  // fast mode runs few cycles
  p.options().postmortem.workers = 4;
  ASSERT_TRUE(p.profileFile(assetProgram("clomp"))) << p.lastError();
  EXPECT_TRUE(p.blameReport()->rows.empty());
  EXPECT_EQ(p.blameReport()->totalRawSamples, p.instances()->size());
  EXPECT_FALSE(p.instances()->empty());
}

// ---------------------------------------------------------------------------
// The acceptance bar: workers in {2, 4, 8} bit-identical to workers=1 on
// every bundled asset program.
// ---------------------------------------------------------------------------

class ParallelCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelCorpus, ShardedMatchesSequentialBitForBit) {
  Profiler p;
  sampling::RunLog log = logOfAsset(GetParam(), p);
  for (uint32_t workers : {2u, 4u, 8u}) {
    pm::ParallelOptions popts;
    popts.workers = workers;
    pm::PostmortemResult r = pm::runPostmortem(p.compilation()->module(), p.moduleBlame(),
                                               log, {}, {}, popts);
    EXPECT_EQ(r.instances, *p.instances()) << "workers=" << workers;
    ASSERT_EQ(r.report, *p.blameReport()) << "workers=" << workers;
  }
}

TEST_P(ParallelCorpus, ProfilerFacadeMatchesSequential) {
  Profiler seq, par;
  seq.options().postmortem.workers = 1;
  par.options().postmortem.workers = 4;
  ASSERT_TRUE(seq.profileFile(assetProgram(GetParam()))) << seq.lastError();
  ASSERT_TRUE(par.profileFile(assetProgram(GetParam()))) << par.lastError();
  EXPECT_EQ(*par.blameReport(), *seq.blameReport());
  EXPECT_EQ(*par.instances(), *seq.instances());
  EXPECT_EQ(par.dataCentricText(), seq.dataCentricText());
  EXPECT_EQ(par.codeCentricText(), seq.codeCentricText());
}

INSTANTIATE_TEST_SUITE_P(Programs, ParallelCorpus,
                         ::testing::Values("example", "clomp", "clomp_opt", "minimd",
                                           "minimd_opt", "lulesh"));

// ---------------------------------------------------------------------------
// Deterministic merge: total row order and order-independence.
// ---------------------------------------------------------------------------

pm::BlameReport reportOf(uint64_t userSamples, std::vector<pm::VariableBlame> rows) {
  pm::BlameReport r;
  r.totalUserSamples = userSamples;
  r.totalRawSamples = userSamples;
  for (auto& row : rows) {
    row.percent = userSamples ? 100.0 * static_cast<double>(row.sampleCount) / userSamples : 0.0;
    r.rows.push_back(row);
  }
  std::sort(r.rows.begin(), r.rows.end(), pm::blameRowLess);
  return r;
}

TEST(ParallelMerge, TieBreakByNameThenContextThenType) {
  pm::BlameReport r = reportOf(100, {{"zeta", "int", "main", 10, 0.0},
                                     {"alpha", "int", "work", 10, 0.0},
                                     {"alpha", "int", "main", 10, 0.0},
                                     {"alpha", "real", "work", 10, 0.0},
                                     {"big", "int", "main", 90, 0.0}});
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0].name, "big");  // highest count first
  EXPECT_EQ(r.rows[1].name, "alpha");
  EXPECT_EQ(r.rows[1].context, "main");
  EXPECT_EQ(r.rows[2].name, "alpha");
  EXPECT_EQ(r.rows[2].context, "work");
  EXPECT_EQ(r.rows[2].type, "int");
  EXPECT_EQ(r.rows[3].type, "real");
  EXPECT_EQ(r.rows[4].name, "zeta");
}

TEST(ParallelMerge, MergeIsOrderIndependent) {
  pm::BlameReport a = reportOf(50, {{"x", "int", "main", 25, 0.0},
                                    {"y", "int", "main", 25, 0.0}});
  pm::BlameReport b = reportOf(30, {{"y", "int", "main", 15, 0.0},
                                    {"z", "real", "work", 15, 0.0}});
  pm::BlameReport c = reportOf(20, {{"x", "int", "main", 20, 0.0}});
  pm::BlameReport abc = pm::aggregateAcrossLocales({&a, &b, &c});
  pm::BlameReport cba = pm::aggregateAcrossLocales({&c, &b, &a});
  pm::BlameReport bac = pm::aggregateAcrossLocales({&b, &a, &c});
  EXPECT_EQ(abc, cba);
  EXPECT_EQ(abc, bac);
  EXPECT_EQ(abc.totalUserSamples, 100u);
  const pm::VariableBlame* x = abc.find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->sampleCount, 45u);
  EXPECT_NEAR(x->percent, 45.0, 1e-12);
}

TEST(ParallelMerge, MergeOfOneIsIdentity) {
  Profiler p;
  logOfAsset("example", p, 7);
  ASSERT_FALSE(p.blameReport()->rows.empty());
  pm::BlameReport merged = pm::aggregateAcrossLocales({p.blameReport()});
  EXPECT_EQ(merged, *p.blameReport());
}

// ---------------------------------------------------------------------------
// Multi-locale: the locale fan-out must be bit-identical for every pool
// width and across repeated runs, and the aggregate must not depend on the
// order the per-locale reports are merged in.
// ---------------------------------------------------------------------------

TEST(ParallelMultiLocale, WorkerCountAndRepetitionBitIdentical) {
  auto runWith = [](uint32_t workers) {
    ProfileOptions o;
    o.localeWorkers = workers;
    return profileMultiLocale(assetProgram("minimd_badloc"), 4, o);
  };
  MultiLocaleResult seq = runWith(1);
  ASSERT_TRUE(seq.ok) << seq.error;
  ASSERT_FALSE(seq.aggregate.rows.empty());
  for (uint32_t workers : {2u, 4u}) {
    MultiLocaleResult par = runWith(workers);
    ASSERT_TRUE(par.ok) << par.error;
    EXPECT_EQ(par.aggregate, seq.aggregate) << "workers=" << workers;
    EXPECT_EQ(par.perLocale, seq.perLocale) << "workers=" << workers;
  }
  // Repetition: same pool width twice -> same bytes (no run-to-run jitter).
  MultiLocaleResult again = runWith(4);
  MultiLocaleResult again2 = runWith(4);
  EXPECT_EQ(again.aggregate, again2.aggregate);
  EXPECT_EQ(again.perLocale, again2.perLocale);
}

TEST(PropertyLocaleAggregate, PermutationInvariantWithCommSplit) {
  // Real per-locale reports (with live remote GET/PUT splits) merged in
  // every rotation and the full reversal: one aggregate, bit for bit —
  // including the comm-split fields, not just the sample counts.
  MultiLocaleResult r = profileMultiLocale(assetProgram("minimd_badloc"), 4);
  ASSERT_TRUE(r.ok) << r.error;
  std::vector<const pm::BlameReport*> order = {&r.perLocale[0], &r.perLocale[1],
                                               &r.perLocale[2], &r.perLocale[3]};
  pm::BlameReport ref = pm::aggregateAcrossLocales(order);
  EXPECT_EQ(ref, r.aggregate);
  uint64_t remote = 0;
  for (const pm::VariableBlame& row : ref.rows) remote += row.remoteSamples();
  EXPECT_GT(remote, 0u) << "permutation test would be vacuous without remote blame";
  for (int rot = 1; rot < 4; ++rot) {
    std::rotate(order.begin(), order.begin() + 1, order.end());
    EXPECT_EQ(pm::aggregateAcrossLocales(order), ref) << "rotation " << rot;
  }
  std::reverse(order.begin(), order.end());
  EXPECT_EQ(pm::aggregateAcrossLocales(order), ref) << "reversal";
}

TEST(ParallelMerge, MergeSumsCommSplitFields) {
  auto rowWith = [](uint64_t comp, uint64_t loc, uint64_t get, uint64_t put) {
    pm::VariableBlame row;
    row.name = "x";
    row.type = "int";
    row.context = "main";
    row.computeSamples = comp;
    row.localSamples = loc;
    row.remoteGetSamples = get;
    row.remotePutSamples = put;
    row.sampleCount = comp + loc + get + put;
    return row;
  };
  pm::BlameReport a, b;
  a.totalUserSamples = a.totalRawSamples = 10;
  a.rows = {rowWith(1, 2, 3, 4)};
  b.totalUserSamples = b.totalRawSamples = 30;
  b.rows = {rowWith(10, 20, 0, 0)};
  pm::BlameReport merged = pm::aggregateAcrossLocales({&a, &b});
  ASSERT_EQ(merged.rows.size(), 1u);
  EXPECT_EQ(merged.rows[0].computeSamples, 11u);
  EXPECT_EQ(merged.rows[0].localSamples, 22u);
  EXPECT_EQ(merged.rows[0].remoteGetSamples, 3u);
  EXPECT_EQ(merged.rows[0].remotePutSamples, 4u);
  EXPECT_EQ(merged.rows[0].sampleCount, 40u);
  EXPECT_EQ(merged.rows[0].remoteSamples(), 7u);
}

TEST(ParallelMerge, MergeSumsCommMatrixCells) {
  // Cell-level merge semantics: shared pairs sum, disjoint pairs interleave
  // in (src, dst) order, and no zero or duplicate cell survives.
  auto rowWithCells = [](std::vector<pm::CommCell> cells) {
    pm::VariableBlame row;
    row.name = "x";
    row.type = "int";
    row.context = "main";
    for (const pm::CommCell& c : cells) row.remoteGetSamples += c.samples;
    row.sampleCount = row.remoteGetSamples;
    row.commMatrix = std::move(cells);
    return row;
  };
  pm::BlameReport a, b;
  a.totalUserSamples = a.totalRawSamples = 10;
  a.rows = {rowWithCells({{0, 2, 4}, {3, 1, 6}})};
  a.totalComm = {{0, 2, 4}, {3, 1, 6}};
  b.totalUserSamples = b.totalRawSamples = 10;
  b.rows = {rowWithCells({{0, 2, 1}, {1, 0, 9}})};
  b.totalComm = {{0, 2, 1}, {1, 0, 9}};
  pm::BlameReport merged = pm::aggregateAcrossLocales({&a, &b});
  std::vector<pm::CommCell> expected = {{0, 2, 5}, {1, 0, 9}, {3, 1, 6}};
  ASSERT_EQ(merged.rows.size(), 1u);
  EXPECT_EQ(merged.rows[0].commMatrix, expected);
  EXPECT_EQ(merged.totalComm, expected);
  EXPECT_EQ(pm::aggregateAcrossLocales({&b, &a}).totalComm, expected);
}

TEST(ParallelPostmortem, CommMatrixSurvivesShardingAtAnyWidth) {
  // A live multi-locale rank with real remote traffic: the sharded pipeline
  // must reproduce the per-variable comm matrices and the global matrix bit
  // for bit at every worker/shard combination (matrix merging is part of
  // the deterministic reduction, not a sequential afterthought).
  Profiler p;
  p.options().run.sampleThreshold = 997;
  p.options().run.numLocales = 4;
  p.options().run.localeId = 1;
  p.options().run.configOverrides["hereId"] = "1";
  p.options().postmortem.workers = 1;
  ASSERT_TRUE(p.profileFile(assetProgram("ig_naive"))) << p.lastError();
  const pm::BlameReport& ref = *p.blameReport();
  ASSERT_FALSE(ref.totalComm.empty()) << "vacuous without remote samples";
  uint64_t cells = 0;
  for (const pm::VariableBlame& row : ref.rows) cells += row.commMatrix.size();
  ASSERT_GT(cells, 0u);
  const sampling::RunLog& log = p.runResult()->log;
  for (auto [workers, shards] : {std::pair<uint32_t, uint32_t>{2, 3},
                                 {4, 16},
                                 {8, 1},
                                 {3, 64}}) {
    pm::ParallelOptions popts;
    popts.workers = workers;
    popts.shards = shards;
    pm::PostmortemResult r = pm::runPostmortem(p.compilation()->module(), p.moduleBlame(),
                                               log, {}, {}, popts);
    ASSERT_EQ(r.report, ref) << "workers=" << workers << " shards=" << shards;
  }
}

// ---------------------------------------------------------------------------
// Property suite: random sample logs -> shard -> merge == sequential.
// ---------------------------------------------------------------------------

/// Generates a random-but-valid RunLog against a module: frames reference
/// real functions/instructions, task tags form acyclic parent chains with
/// synthesized pre-spawn stacks.
sampling::RunLog randomLog(const ir::Module& m, Rng& rng) {
  sampling::RunLog log;
  log.sampleThreshold = 97;
  log.numStreams = 1 + static_cast<uint32_t>(rng.nextBounded(8));

  auto randomFrame = [&] {
    sampling::Frame f;
    f.func = static_cast<ir::FuncId>(rng.nextBounded(m.numFunctions()));
    uint32_t n = m.function(f.func).numInstrs();
    f.instr = static_cast<ir::InstrId>(n ? rng.nextBounded(n) : 0);
    return f;
  };
  auto randomStack = [&](size_t maxDepth) {
    std::vector<sampling::Frame> stack;
    size_t depth = rng.nextBounded(maxDepth + 1);
    for (size_t i = 0; i < depth; ++i) stack.push_back(randomFrame());
    return stack;
  };

  // Spawn records with parent chains: parents always have smaller tags, so
  // chains terminate; chain depth is unbounded in principle (tag k may pick
  // tag k-1 as parent, giving a chain of length k).
  uint64_t numTags = rng.nextBounded(20);
  for (uint64_t tag = 1; tag <= numTags; ++tag) {
    sampling::SpawnRecord rec;
    rec.tag = tag;
    rec.parentTag = tag > 1 ? rng.nextBounded(tag) : 0;  // 0 = main context
    rec.taskFn = static_cast<ir::FuncId>(rng.nextBounded(m.numFunctions()));
    rec.spawnInstr = 0;
    rec.preSpawnStack = randomStack(4);
    log.spawns.emplace(tag, rec);
  }

  uint64_t numSamples = rng.nextBounded(400);
  for (uint64_t i = 0; i < numSamples; ++i) {
    sampling::RawSample s;
    s.stream = static_cast<uint32_t>(rng.nextBounded(log.numStreams));
    s.atCycle = rng.next() >> 20;
    switch (rng.nextBounded(8)) {
      case 0:  // idle sample
        s.runtimeFrame = static_cast<sampling::RuntimeFrameKind>(1 + rng.nextBounded(3));
        break;
      case 1:  // user sample with an empty stack (degenerate but legal)
        s.taskTag = numTags ? rng.nextBounded(numTags + 1) : 0;
        break;
      default:
        s.taskTag = numTags ? rng.nextBounded(numTags + 1) : 0;
        s.stack = randomStack(6);
        // Random comm classification: some samples are local accesses, some
        // remote with a live locale pair — the sharded pipeline must carry
        // the pairs into per-variable matrices identically to sequential.
        s.accessKind = static_cast<sampling::AccessKind>(rng.nextBounded(4));
        if (s.accessKind == sampling::AccessKind::RemoteGet ||
            s.accessKind == sampling::AccessKind::RemotePut) {
          s.srcLocale = static_cast<int32_t>(rng.nextBounded(8));
          s.dstLocale = static_cast<int32_t>((s.srcLocale + 1 + rng.nextBounded(7)) % 8);
        }
        break;
    }
    log.samples.push_back(std::move(s));
  }
  return log;
}

class PropertyShardInvariance : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertyShardInvariance, RandomLogsMergeToSequentialResult) {
  // One static corpus, many random logs against it.
  Profiler p;
  p.options().run.sampleThreshold = 0;
  ASSERT_TRUE(p.compileFile(assetProgram("example")) && p.analyze() && p.run() &&
              p.postProcess())
      << p.lastError();
  const ir::Module& m = p.compilation()->module();
  const an::ModuleBlame& mb = *p.moduleBlame();

  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    sampling::RunLog log = randomLog(m, rng);
    std::vector<pm::Instance> seqInstances = pm::consolidate(m, log);
    pm::BlameReport seqReport = pm::attribute(mb, seqInstances);

    pm::ParallelOptions popts;
    popts.workers = 2 + static_cast<uint32_t>(rng.nextBounded(7));   // 2..8
    popts.shards = 1 + static_cast<uint32_t>(rng.nextBounded(33));   // 1..33
    pm::PostmortemResult r = pm::runPostmortem(m, &mb, log, {}, {}, popts);
    ASSERT_EQ(r.instances, seqInstances)
        << "trial " << trial << " workers=" << popts.workers << " shards=" << popts.shards;
    ASSERT_EQ(r.report, seqReport)
        << "trial " << trial << " workers=" << popts.workers << " shards=" << popts.shards;
  }
}

TEST_P(PropertyShardInvariance, EveryShardCountMergesIdentically) {
  // Sweep shard counts exhaustively on one log: the merged report must not
  // depend on the partition granularity at all.
  Profiler p;
  p.options().run.sampleThreshold = 0;
  ASSERT_TRUE(p.compileFile(assetProgram("example")) && p.analyze() && p.run() &&
              p.postProcess())
      << p.lastError();
  const ir::Module& m = p.compilation()->module();
  Rng rng(GetParam() * 7919 + 1);
  sampling::RunLog log = randomLog(m, rng);
  pm::BlameReport seqReport = pm::attribute(*p.moduleBlame(), pm::consolidate(m, log));
  for (uint32_t shards = 1; shards <= 12; ++shards) {
    pm::ParallelOptions popts;
    popts.workers = 3;
    popts.shards = shards;
    pm::PostmortemResult r = pm::runPostmortem(m, p.moduleBlame(), log, {}, {}, popts);
    ASSERT_EQ(r.report, seqReport) << "shards=" << shards;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyShardInvariance,
                         ::testing::Values(1ull, 42ull, 0xC0FFEEull, 20260806ull));

}  // namespace
}  // namespace cb
