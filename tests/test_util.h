// Shared helpers for the ChapelBlame test suites.
#pragma once

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/profiler.h"

namespace cb::test {

/// Set by `cb_tests --update-golden` (see test_main.cpp): golden suites
/// regenerate their fixtures instead of asserting against them.
extern bool g_updateGolden;

/// Compiles a snippet; fails the test (with diagnostics) on error.
inline std::unique_ptr<fe::Compilation> compile(const std::string& src,
                                                fe::CompileOptions opts = {}) {
  auto c = fe::Compilation::fromString("test.chpl", src, opts);
  EXPECT_TRUE(c->ok()) << c->diags().renderAll();
  return c;
}

/// Compiles + runs a snippet, returning the writeln output. Sampling off by
/// default so tests are fast and output-focused.
inline std::string runOutput(const std::string& src, rt::RunOptions ropts = {},
                             fe::CompileOptions copts = {}) {
  auto c = fe::Compilation::fromString("test.chpl", src, copts);
  EXPECT_TRUE(c->ok()) << c->diags().renderAll();
  if (!c->ok()) return "<compile error>";
  if (ropts.sampleThreshold == 9973) ropts.sampleThreshold = 0;  // default: off
  rt::RunResult r = rt::execute(c->module(), ropts);
  EXPECT_TRUE(r.ok) << r.error;
  return r.output;
}

/// Full pipeline on a snippet; asserts success.
inline Profiler profileSource(const std::string& src, ProfileOptions opts = {}) {
  Profiler p(opts);
  EXPECT_TRUE(p.profileString("test.chpl", src)) << p.lastError();
  return p;
}

/// Blame lines of a named variable in a function, restricted to a range.
inline std::set<uint32_t> blameLinesOf(const Profiler& p, const std::string& fnName,
                                       const std::string& var, uint32_t lo = 0,
                                       uint32_t hi = 100000) {
  const ir::Module& m = p.compilation()->module();
  ir::FuncId f = ir::kNone;
  for (ir::FuncId i = 0; i < m.numFunctions(); ++i)
    if (m.function(i).displayName == fnName) f = i;
  EXPECT_NE(f, ir::kNone) << "no function " << fnName;
  std::set<uint32_t> out;
  if (f == ir::kNone) return out;
  const an::FunctionBlame& fb = p.moduleBlame()->fn(f);
  for (an::EntityId e = 0; e < fb.entities.size(); ++e) {
    if (fb.entities[e].displayName != var) continue;
    for (uint32_t line : fb.blameLines(m, e))
      if (line >= lo && line <= hi) out.insert(line);
  }
  return out;
}

}  // namespace cb::test
