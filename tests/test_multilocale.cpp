// Multi-locale PGAS simulation tests: the comm split of variable blame
// (compute / local / remote GET / remote PUT), the distribution-mismatch
// acceptance scenario (remote blame collapses to local when a Cyclic array
// is redistributed Block), surfacing of ALL failing locales with partial
// reports kept, and golden fixtures for the comm / per-locale views at 4
// locales (regenerate with `cb_tests --update-golden`).
//
// Suite naming feeds the CTest labels (tests/CMakeLists.txt):
// MultiLocale*.* carries the `multilocale` label.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "cb_config.h"
#include "report/views.h"
#include "sampling/sample.h"
#include "test_util.h"

namespace cb {
namespace {

/// One 4-locale profile per program per binary invocation — the multi-locale
/// pipeline is deterministic, so every test can share the cached result.
const MultiLocaleResult& profiled4(const std::string& program) {
  static std::map<std::string, MultiLocaleResult> cache;
  auto it = cache.find(program);
  if (it == cache.end())
    it = cache.emplace(program, profileMultiLocale(assetProgram(program), 4)).first;
  return it->second;
}

// ---------------------------------------------------------------------------
// Comm split invariants.
// ---------------------------------------------------------------------------

TEST(MultiLocaleComm, SplitFieldsPartitionSampleCount) {
  const MultiLocaleResult& r = profiled4("minimd_badloc");
  ASSERT_TRUE(r.ok) << r.error;
  auto checkReport = [](const pm::BlameReport& rep, const std::string& what) {
    ASSERT_FALSE(rep.rows.empty()) << what;
    for (const pm::VariableBlame& row : rep.rows) {
      EXPECT_EQ(row.computeSamples + row.localSamples + row.remoteGetSamples +
                    row.remotePutSamples,
                row.sampleCount)
          << what << ": " << row.name;
    }
  };
  checkReport(r.aggregate, "aggregate");
  for (size_t l = 0; l < r.perLocale.size(); ++l)
    checkReport(r.perLocale[l], "locale " + std::to_string(l));
}

TEST(MultiLocaleComm, SingleLocaleRunsHaveNoRemoteBlame) {
  // With one locale every distributed index is owned locally: no GETs, no
  // PUTs, anywhere — in the exact comm counters or in the blame split.
  Profiler p;
  ASSERT_TRUE(p.profileFile(assetProgram("minimd_badloc"))) << p.lastError();
  EXPECT_EQ(p.runResult()->log.commGets, 0u);
  EXPECT_EQ(p.runResult()->log.commPuts, 0u);
  EXPECT_EQ(p.runResult()->log.commOnForks, 0u);
  for (const pm::VariableBlame& row : p.blameReport()->rows)
    EXPECT_EQ(row.remoteSamples(), 0u) << row.name;
}

TEST(MultiLocaleComm, MisdistributionShowsUpAsRemoteBlame) {
  // The acceptance scenario: the Cyclic-distributed variant iterated in
  // block chunks must show the position/force arrays dominated by remote
  // blame; the Block-distributed twin shifts most of it back to local.
  // The twin still pays for its window-edge halo (the i-2..i+2 neighbor
  // reads that cross locale borders), and remote latency dwarfs local
  // access costs, so its residual remote share is nonzero — the robust
  // signals are the wide share gap and the collapse of the remote sample
  // count itself.
  const MultiLocaleResult& bad = profiled4("minimd_badloc");
  const MultiLocaleResult& good = profiled4("minimd_blockloc");
  ASSERT_TRUE(bad.ok) << bad.error;
  ASSERT_TRUE(good.ok) << good.error;
  for (const char* name : {"Pos", "Force"}) {
    const pm::VariableBlame* b = bad.aggregate.find(name);
    const pm::VariableBlame* g = good.aggregate.find(name);
    ASSERT_NE(b, nullptr) << name;
    ASSERT_NE(g, nullptr) << name;
    double badRemote = 100.0 * static_cast<double>(b->remoteSamples()) / b->sampleCount;
    double goodRemote = 100.0 * static_cast<double>(g->remoteSamples()) / g->sampleCount;
    EXPECT_GT(badRemote, 85.0) << name << " should be remote-dominated under Cyclic";
    EXPECT_LT(goodRemote, badRemote - 30.0)
        << name << " should be far less remote under Block";
    EXPECT_GT(b->remoteSamples(), 4 * g->remoteSamples())
        << name << ": Block should collapse the remote sample count";
  }
}

TEST(MultiLocaleComm, OnForksAreCountedPerLocale) {
  // Every SPMD rank executes numSteps * numLocales `on` blocks, of which
  // numLocales - 1 per step target a different locale and fork.
  Profiler p;
  p.options().run.numLocales = 4;
  p.options().run.localeId = 1;
  ASSERT_TRUE(p.profileFile(assetProgram("minimd_badloc"))) << p.lastError();
  EXPECT_EQ(p.runResult()->log.commOnForks, 4u * 3u);  // numSteps=4, 3 remote targets
  EXPECT_GT(p.runResult()->log.commGets, 0u);
  EXPECT_GT(p.runResult()->log.commPuts, 0u);
}

// ---------------------------------------------------------------------------
// Failing locales: ALL of them surface, completed reports are kept.
// ---------------------------------------------------------------------------

TEST(MultiLocaleErrors, AllFailuresSurfacedAndPartialReportsKept) {
  // Locales 1 and 2 divide by zero; locales 0 and 3 complete. The result
  // must name both failures (not just the first) and still aggregate the
  // two completed locales.
  std::string path = ::testing::TempDir() + "cb_multilocale_partial.chpl";
  {
    std::ofstream out(path);
    out << "proc main() {\n"
           "  var s = 0;\n"
           "  for i in 0..#200 { s += i; }\n"
           "  if here.id == 1 { var z = s / (here.id - 1); writeln(z); }\n"
           "  if here.id == 2 { var z = s / (here.id - 2); writeln(z); }\n"
           "  writeln(s);\n"
           "}\n";
  }
  ProfileOptions o;
  o.run.sampleThreshold = 101;  // the program is tiny; make sure it samples
  MultiLocaleResult r = profileMultiLocale(path, 4, o);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.localeErrors.size(), 4u);
  EXPECT_TRUE(r.localeErrors[0].empty()) << r.localeErrors[0];
  EXPECT_FALSE(r.localeErrors[1].empty());
  EXPECT_FALSE(r.localeErrors[2].empty());
  EXPECT_TRUE(r.localeErrors[3].empty()) << r.localeErrors[3];
  EXPECT_NE(r.error.find("locale 1"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("locale 2"), std::string::npos) << r.error;
  // Completed locales keep their reports and drive the aggregate.
  ASSERT_EQ(r.perLocale.size(), 4u);
  EXPECT_FALSE(r.perLocale[0].rows.empty());
  EXPECT_TRUE(r.perLocale[1].rows.empty());
  EXPECT_TRUE(r.perLocale[2].rows.empty());
  EXPECT_FALSE(r.perLocale[3].rows.empty());
  pm::BlameReport expected = pm::aggregateAcrossLocales({&r.perLocale[0], &r.perLocale[3]});
  EXPECT_EQ(r.aggregate, expected);
}

TEST(MultiLocaleErrors, TotalFailureAggregatesToEmpty) {
  std::string path = ::testing::TempDir() + "cb_multilocale_allfail.chpl";
  {
    std::ofstream out(path);
    out << "proc main() { var z = 1 / (numLocales - numLocales); writeln(z); }\n";
  }
  MultiLocaleResult r = profileMultiLocale(path, 3);
  EXPECT_FALSE(r.ok);
  for (const std::string& e : r.localeErrors) EXPECT_FALSE(e.empty());
  EXPECT_TRUE(r.aggregate.rows.empty());
  EXPECT_EQ(r.aggregate.totalRawSamples, 0u);
}

TEST(MultiLocaleErrors, LocaleCountValidation) {
  // The shared validator behind profileMultiLocale and the profile_program
  // --locales flag: 1..kMaxSimulatedLocales pass, 0 and above-cap fail with
  // messages that name the offending value / the cap.
  EXPECT_TRUE(validateLocaleCount(1).empty());
  EXPECT_TRUE(validateLocaleCount(1024).empty());
  EXPECT_TRUE(validateLocaleCount(kMaxSimulatedLocales).empty());
  EXPECT_FALSE(validateLocaleCount(0).empty());
  std::string overCap = validateLocaleCount(kMaxSimulatedLocales + 1ull);
  ASSERT_FALSE(overCap.empty());
  EXPECT_NE(overCap.find(std::to_string(kMaxSimulatedLocales)), std::string::npos) << overCap;
  EXPECT_NE(overCap.find("4097"), std::string::npos) << overCap;
}

TEST(MultiLocaleErrors, InvalidLocaleCountFailsFast) {
  // Rejected before any pipeline spins up: ok=false, the validator's
  // message, and no per-locale slots at all.
  for (uint32_t bad : {0u, kMaxSimulatedLocales + 1u}) {
    MultiLocaleResult r = profileMultiLocale(assetProgram("clomp"), bad);
    EXPECT_FALSE(r.ok) << bad;
    EXPECT_EQ(r.error, validateLocaleCount(bad)) << bad;
    EXPECT_TRUE(r.perLocale.empty()) << bad;
    EXPECT_TRUE(r.localeErrors.empty()) << bad;
    EXPECT_TRUE(r.aggregate.rows.empty()) << bad;
  }
}

TEST(MultiLocaleMemory, DroppedPerLocaleReportsStillAggregate) {
  // keepPerLocaleReports=false is the 1024-locale memory lever: every
  // perLocale slot stays empty, while the streamed aggregate is bit-identical
  // to the retained run's.
  ProfileOptions keep;
  MultiLocaleResult retained = profileMultiLocale(assetProgram("minimd_badloc"), 4, keep);
  ASSERT_TRUE(retained.ok) << retained.error;
  ProfileOptions drop;
  drop.keepPerLocaleReports = false;
  MultiLocaleResult dropped = profileMultiLocale(assetProgram("minimd_badloc"), 4, drop);
  ASSERT_TRUE(dropped.ok) << dropped.error;
  ASSERT_EQ(dropped.perLocale.size(), 4u);
  for (const pm::BlameReport& rep : dropped.perLocale) {
    EXPECT_TRUE(rep.rows.empty());
    EXPECT_EQ(rep.totalRawSamples, 0u);
  }
  EXPECT_EQ(dropped.aggregate, retained.aggregate);
  EXPECT_FALSE(dropped.aggregate.rows.empty());
}

// ---------------------------------------------------------------------------
// Golden fixtures: comm and per-locale views at 4 locales, byte-pinned.
// ---------------------------------------------------------------------------

std::string goldenPath(const std::string& program, const char* view) {
  return std::string(kGoldenDir) + "/" + program + "_" + view + "4.txt";
}

std::string renderComm(const MultiLocaleResult& r) {
  return rpt::commView(r.aggregate, {1000, 0.0});  // all rows, no floor
}

std::string renderLocale(const MultiLocaleResult& r) {
  return rpt::perLocaleView(r.perLocale, {1000, 0.0});
}

void checkGolden(const std::string& rendered, const std::string& path) {
  if (test::g_updateGolden) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << rendered;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing fixture " << path << "; run `cb_tests --update-golden`";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(rendered, expected.str())
      << "golden mismatch for " << path
      << "; if intentional, regenerate with `cb_tests --update-golden`";
}

class MultiLocaleGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(MultiLocaleGolden, CommViewMatchesFixture) {
  const MultiLocaleResult& r = profiled4(GetParam());
  ASSERT_TRUE(r.ok) << r.error;
  checkGolden(renderComm(r), goldenPath(GetParam(), "comm"));
}

TEST_P(MultiLocaleGolden, PerLocaleViewMatchesFixture) {
  const MultiLocaleResult& r = profiled4(GetParam());
  ASSERT_TRUE(r.ok) << r.error;
  checkGolden(renderLocale(r), goldenPath(GetParam(), "locale"));
}

TEST_P(MultiLocaleGolden, SequentialLocalesMatchFixture) {
  // The locale pool must land on the same golden bytes as a fully
  // sequential locale loop (the bit-identical acceptance bar, per program).
  ProfileOptions o;
  o.localeWorkers = 1;
  MultiLocaleResult r = profileMultiLocale(assetProgram(GetParam()), 4, o);
  ASSERT_TRUE(r.ok) << r.error;
  std::ifstream in(goldenPath(GetParam(), "comm"), std::ios::binary);
  if (test::g_updateGolden && !in) return;  // fixture being created by the twin test
  ASSERT_TRUE(in) << "missing fixture " << goldenPath(GetParam(), "comm");
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(renderComm(r), expected.str());
}

INSTANTIATE_TEST_SUITE_P(Programs, MultiLocaleGolden,
                         ::testing::Values("minimd_badloc", "minimd_blockloc", "clomp"));

// ---------------------------------------------------------------------------
// Locale×locale communication matrix. Suites named CommMatrix* carry the
// `commmatrix` CTest label (tests/CMakeLists.txt).
// ---------------------------------------------------------------------------

/// Structural invariants of a sparse comm matrix: sorted by (src, dst), no
/// zero cells, every pair in range and actually crossing locales.
void expectWellFormedCells(const std::vector<pm::CommCell>& cells, int32_t numLocales,
                           const std::string& what) {
  for (size_t i = 0; i < cells.size(); ++i) {
    const pm::CommCell& c = cells[i];
    EXPECT_GT(c.samples, 0u) << what << ": zero cell " << c.src << "->" << c.dst;
    EXPECT_NE(c.src, c.dst) << what << ": remote access cannot stay on-locale";
    EXPECT_GE(c.src, 0) << what;
    EXPECT_LT(c.src, numLocales) << what;
    EXPECT_GE(c.dst, 0) << what;
    EXPECT_LT(c.dst, numLocales) << what;
    if (i > 0) {
      EXPECT_TRUE(std::make_pair(cells[i - 1].src, cells[i - 1].dst) <
                  std::make_pair(c.src, c.dst))
          << what << ": cells out of (src, dst) order at " << i;
    }
  }
}

uint64_t cellSum(const std::vector<pm::CommCell>& cells) {
  uint64_t n = 0;
  for (const pm::CommCell& c : cells) n += c.samples;
  return n;
}

class CommMatrixCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(CommMatrixCorpus, CellsSumToRemoteSampleTallies) {
  // Per variable, the matrix is exactly the remote samples redistributed
  // over locale pairs: cell sums equal the remote GET+PUT sample tallies.
  const MultiLocaleResult& r = profiled4(GetParam());
  ASSERT_TRUE(r.ok) << r.error;
  for (const pm::VariableBlame& row : r.aggregate.rows) {
    expectWellFormedCells(row.commMatrix, 4, std::string("aggregate ") + row.name);
    EXPECT_EQ(cellSum(row.commMatrix), row.remoteSamples()) << row.name;
  }
  expectWellFormedCells(r.aggregate.totalComm, 4, "aggregate totalComm");
  // The global matrix is the per-locale matrices summed: totals conserved.
  uint64_t perLocaleTotal = 0;
  for (const pm::BlameReport& rep : r.perLocale) {
    expectWellFormedCells(rep.totalComm, 4, "per-locale totalComm");
    for (const pm::VariableBlame& row : rep.rows) {
      expectWellFormedCells(row.commMatrix, 4, std::string("per-locale ") + row.name);
      EXPECT_EQ(cellSum(row.commMatrix), row.remoteSamples()) << row.name;
    }
    perLocaleTotal += cellSum(rep.totalComm);
  }
  EXPECT_EQ(cellSum(r.aggregate.totalComm), perLocaleTotal);
}

INSTANTIATE_TEST_SUITE_P(Programs, CommMatrixCorpus,
                         ::testing::Values("minimd_badloc", "minimd_blockloc", "clomp",
                                           "ig_naive", "ig_agg"));

/// One single-rank ig profile (locale 1 of 4, one worker stream so remote
/// latency is undiluted by parallel virtual streams).
rt::RunResult igRun(const char* program, bool fast) {
  Profiler p;
  if (fast) {
    p.options().compile.fast = true;
    p.options().run.fastCostProfile = true;
  }
  p.options().run.numLocales = 4;
  p.options().run.localeId = 1;
  p.options().run.numWorkers = 1;
  p.options().run.configOverrides["hereId"] = "1";
  EXPECT_TRUE(p.profileFile(assetProgram(program))) << p.lastError();
  return *p.runResult();
}

TEST(CommMatrixLog, ExactMatrixMatchesExactCounters) {
  // The run-log matrix counts every remote element transfer — naive and
  // aggregated alike — so its total equals the exact comm counters.
  for (const char* program : {"ig_naive", "ig_agg"}) {
    rt::RunResult r = igRun(program, false);
    const sampling::RunLog& log = r.log;
    uint64_t matrixSum = 0;
    for (const auto& [key, count] : log.commMatrix) {
      EXPECT_NE(sampling::RunLog::pairSrc(key), sampling::RunLog::pairDst(key)) << program;
      EXPECT_GT(count, 0u) << program;
      matrixSum += count;
    }
    EXPECT_EQ(matrixSum,
              log.commGets + log.commPuts + log.commAggGets + log.commAggPuts)
        << program;
    EXPECT_GT(matrixSum, 0u) << program;
  }
}

TEST(CommMatrixLog, AggregationMovesTheSameElements) {
  // Aggregators change the cost of the traffic, never the traffic itself:
  // the aggregated twin moves exactly the elements the naive one moves,
  // pair for pair, just through buffers instead of one-at-a-time.
  rt::RunResult naive = igRun("ig_naive", false);
  rt::RunResult agg = igRun("ig_agg", false);
  EXPECT_GT(naive.log.commGets, 0u);
  EXPECT_GT(naive.log.commPuts, 0u);
  EXPECT_EQ(naive.log.commAggGets, 0u);
  EXPECT_EQ(agg.log.commGets, 0u);
  EXPECT_EQ(agg.log.commPuts, 0u);
  EXPECT_EQ(agg.log.commAggGets, naive.log.commGets);
  EXPECT_EQ(agg.log.commAggPuts, naive.log.commPuts);
  EXPECT_GT(agg.log.commAggFlushes, 0u);
  // Far fewer flushes than elements — otherwise batching is not happening.
  EXPECT_LT(agg.log.commAggFlushes * 4, agg.log.commAggGets + agg.log.commAggPuts);
  EXPECT_EQ(agg.log.commMatrix, naive.log.commMatrix);
}

TEST(CommMatrixAggregation, AggregationBeatsNaiveThreefold) {
  // The conveyors/bale headline on the index-gather pair: batching the
  // fine-grained remote traffic wins >= 3x in total virtual time, under
  // both cost profiles. (Measured: 3.54x standard, 5.89x fast.)
  rt::RunResult naiveStd = igRun("ig_naive", false);
  rt::RunResult aggStd = igRun("ig_agg", false);
  ASSERT_GT(aggStd.totalCycles, 0u);
  EXPECT_GE(naiveStd.totalCycles, 3 * aggStd.totalCycles)
      << "standard: naive " << naiveStd.totalCycles << " vs agg " << aggStd.totalCycles;
  rt::RunResult naiveFast = igRun("ig_naive", true);
  rt::RunResult aggFast = igRun("ig_agg", true);
  ASSERT_GT(aggFast.totalCycles, 0u);
  EXPECT_GE(naiveFast.totalCycles, 3 * aggFast.totalCycles)
      << "fast: naive " << naiveFast.totalCycles << " vs agg " << aggFast.totalCycles;
  // Same program, same answer: aggregation must not change the final state.
  EXPECT_EQ(naiveStd.output, aggStd.output);
  EXPECT_EQ(naiveFast.output, aggFast.output);
  EXPECT_FALSE(naiveStd.output.empty());
}

TEST(CommMatrixAggregation, BlameGapCollapses) {
  // Under naive fine-grained access the Cyclic table dwarfs its Block twin
  // in the data-centric ranking (measured: 45.2% vs 6.1% of user samples);
  // routed through aggregators the gap collapses (35.2% vs 18.2%) because
  // the remote latency no longer multiplies into every access.
  const MultiLocaleResult& naive = profiled4("ig_naive");
  const MultiLocaleResult& agg = profiled4("ig_agg");
  ASSERT_TRUE(naive.ok) << naive.error;
  ASSERT_TRUE(agg.ok) << agg.error;
  const pm::VariableBlame* nCyc = naive.aggregate.find("ACyc");
  const pm::VariableBlame* nBlk = naive.aggregate.find("ABlk");
  const pm::VariableBlame* aCyc = agg.aggregate.find("ACyc");
  const pm::VariableBlame* aBlk = agg.aggregate.find("ABlk");
  ASSERT_TRUE(nCyc && nBlk && aCyc && aBlk);
  // The Block table is iterated in owner order: fully local in both twins.
  EXPECT_EQ(nBlk->remoteSamples(), 0u);
  EXPECT_EQ(aBlk->remoteSamples(), 0u);
  // The Cyclic table is remote-dominated under naive access.
  EXPECT_GT(100.0 * static_cast<double>(nCyc->remoteSamples()) / nCyc->sampleCount, 80.0);
  double naiveGap = nCyc->percent - nBlk->percent;
  double aggGap = aCyc->percent - aBlk->percent;
  EXPECT_GT(naiveGap, 30.0) << "naive Block-vs-Cyclic blame gap should be wide";
  EXPECT_LT(aggGap, 20.0) << "aggregation should collapse the gap";
  EXPECT_LT(aggGap, naiveGap / 2.0)
      << "gap " << naiveGap << " -> " << aggGap << " is not a collapse";
}

TEST(CommMatrixMerge, SixtyFourLocalesThreeSparsePairs) {
  // A 64-locale run where only three pairs ever communicate: the sparse
  // merge must keep exactly the touched cells — no dense L×L blow-up, no
  // zero cells — and stay order-independent.
  auto makeReport = [](std::vector<pm::CommCell> cells) {
    pm::BlameReport r;
    pm::VariableBlame row;
    row.name = "x";
    row.type = "int";
    row.context = "main";
    row.commMatrix = cells;
    row.remoteGetSamples = cellSum(cells);
    row.sampleCount = row.remoteGetSamples + 10;
    row.computeSamples = 10;
    r.totalUserSamples = r.totalRawSamples = row.sampleCount;
    r.totalComm = std::move(cells);
    r.rows.push_back(std::move(row));
    return r;
  };
  pm::BlameReport a = makeReport({{0, 63, 5}, {17, 42, 1}});
  pm::BlameReport b = makeReport({{17, 42, 3}, {63, 0, 7}});
  pm::BlameReport c = makeReport({{0, 63, 2}});
  pm::BlameReport merged = pm::aggregateAcrossLocales({&a, &b, &c});
  std::vector<pm::CommCell> expected = {{0, 63, 7}, {17, 42, 4}, {63, 0, 7}};
  EXPECT_EQ(merged.totalComm, expected);
  ASSERT_EQ(merged.rows.size(), 1u);
  EXPECT_EQ(merged.rows[0].commMatrix, expected);
  expectWellFormedCells(merged.totalComm, 64, "merged totalComm");
  // Every merge order lands on the same bytes.
  EXPECT_EQ(pm::aggregateAcrossLocales({&c, &b, &a}), merged);
  EXPECT_EQ(pm::aggregateAcrossLocales({&b, &a, &c}), merged);
  // Merging a report with itself doubles every cell, never duplicates one.
  pm::BlameReport doubled = pm::aggregateAcrossLocales({&a, &a});
  std::vector<pm::CommCell> expectedDoubled = {{0, 63, 10}, {17, 42, 2}};
  EXPECT_EQ(doubled.totalComm, expectedDoubled);
}

// ---------------------------------------------------------------------------
// Golden fixtures for --view commmatrix at 4 locales.
// ---------------------------------------------------------------------------

std::string renderCommMatrix(const MultiLocaleResult& r) {
  return rpt::commMatrixView(r.aggregate, {1000, 0.0});  // all rows, no floor
}

class CommMatrixGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(CommMatrixGolden, ViewMatchesFixture) {
  const MultiLocaleResult& r = profiled4(GetParam());
  ASSERT_TRUE(r.ok) << r.error;
  checkGolden(renderCommMatrix(r), goldenPath(GetParam(), "commmatrix"));
}

INSTANTIATE_TEST_SUITE_P(Programs, CommMatrixGolden,
                         ::testing::Values("minimd_badloc", "minimd_blockloc", "ig_naive",
                                           "ig_agg"));

/// Synthetic report with a ring of remote traffic over `n` locales — cells
/// already sorted by (src, dst), deterministic sample counts.
pm::BlameReport ringReport(int32_t n) {
  pm::BlameReport r;
  pm::VariableBlame row;
  row.name = "Ring";
  row.type = "[BlockDom] real(64)";
  row.context = "main";
  for (int32_t l = 0; l < n; ++l) {
    pm::CommCell c{l, (l + 1) % n, static_cast<uint64_t>((l * 7) % 13 + 1)};
    row.commMatrix.push_back(c);
    r.totalComm.push_back(c);
    row.remoteGetSamples += c.samples;
  }
  row.sampleCount = row.remoteGetSamples;
  row.percent = 100.0;
  r.totalUserSamples = r.totalRawSamples = row.sampleCount;
  r.rows.push_back(std::move(row));
  return r;
}

TEST(CommMatrixSparse, HeatGridGatesAtSixteenActiveLocales) {
  // The dense glyph grid is quadratic in active locales, so it renders only
  // up to 16 of them; wider runs print a notice and fall through to the
  // sparse hottest-cells tables, which stay O(maxRows) at any width.
  std::string dense = rpt::commMatrixView(ringReport(16), {1000, 0.0});
  EXPECT_NE(dense.find("(dst)"), std::string::npos) << dense;
  EXPECT_EQ(dense.find("heat grid suppressed"), std::string::npos) << dense;
  std::string sparse = rpt::commMatrixView(ringReport(17), {1000, 0.0});
  EXPECT_EQ(sparse.find("(dst)"), std::string::npos) << sparse;
  EXPECT_NE(sparse.find("heat grid suppressed"), std::string::npos) << sparse;
  EXPECT_NE(sparse.find("Hottest cells"), std::string::npos) << sparse;
  EXPECT_NE(sparse.find("Per-variable hot cells"), std::string::npos) << sparse;
}

TEST(CommMatrixSparseGolden, WideRunMatchesFixture) {
  // Byte-pins the sparse form on a 24-locale ring (> the 16-locale gate):
  // suppression notice + hottest-cells + per-variable tables, no heat grid.
  checkGolden(rpt::commMatrixView(ringReport(24), {1000, 0.0}),
              std::string(kGoldenDir) + "/synthetic_commmatrix_sparse24.txt");
}

}  // namespace
}  // namespace cb
