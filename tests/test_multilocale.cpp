// Multi-locale PGAS simulation tests: the comm split of variable blame
// (compute / local / remote GET / remote PUT), the distribution-mismatch
// acceptance scenario (remote blame collapses to local when a Cyclic array
// is redistributed Block), surfacing of ALL failing locales with partial
// reports kept, and golden fixtures for the comm / per-locale views at 4
// locales (regenerate with `cb_tests --update-golden`).
//
// Suite naming feeds the CTest labels (tests/CMakeLists.txt):
// MultiLocale*.* carries the `multilocale` label.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>

#include "cb_config.h"
#include "report/views.h"
#include "test_util.h"

namespace cb {
namespace {

/// One 4-locale profile per program per binary invocation — the multi-locale
/// pipeline is deterministic, so every test can share the cached result.
const MultiLocaleResult& profiled4(const std::string& program) {
  static std::map<std::string, MultiLocaleResult> cache;
  auto it = cache.find(program);
  if (it == cache.end())
    it = cache.emplace(program, profileMultiLocale(assetProgram(program), 4)).first;
  return it->second;
}

// ---------------------------------------------------------------------------
// Comm split invariants.
// ---------------------------------------------------------------------------

TEST(MultiLocaleComm, SplitFieldsPartitionSampleCount) {
  const MultiLocaleResult& r = profiled4("minimd_badloc");
  ASSERT_TRUE(r.ok) << r.error;
  auto checkReport = [](const pm::BlameReport& rep, const std::string& what) {
    ASSERT_FALSE(rep.rows.empty()) << what;
    for (const pm::VariableBlame& row : rep.rows) {
      EXPECT_EQ(row.computeSamples + row.localSamples + row.remoteGetSamples +
                    row.remotePutSamples,
                row.sampleCount)
          << what << ": " << row.name;
    }
  };
  checkReport(r.aggregate, "aggregate");
  for (size_t l = 0; l < r.perLocale.size(); ++l)
    checkReport(r.perLocale[l], "locale " + std::to_string(l));
}

TEST(MultiLocaleComm, SingleLocaleRunsHaveNoRemoteBlame) {
  // With one locale every distributed index is owned locally: no GETs, no
  // PUTs, anywhere — in the exact comm counters or in the blame split.
  Profiler p;
  ASSERT_TRUE(p.profileFile(assetProgram("minimd_badloc"))) << p.lastError();
  EXPECT_EQ(p.runResult()->log.commGets, 0u);
  EXPECT_EQ(p.runResult()->log.commPuts, 0u);
  EXPECT_EQ(p.runResult()->log.commOnForks, 0u);
  for (const pm::VariableBlame& row : p.blameReport()->rows)
    EXPECT_EQ(row.remoteSamples(), 0u) << row.name;
}

TEST(MultiLocaleComm, MisdistributionShowsUpAsRemoteBlame) {
  // The acceptance scenario: the Cyclic-distributed variant iterated in
  // block chunks must show the position/force arrays dominated by remote
  // blame; the Block-distributed twin shifts them back to local.
  const MultiLocaleResult& bad = profiled4("minimd_badloc");
  const MultiLocaleResult& good = profiled4("minimd_blockloc");
  ASSERT_TRUE(bad.ok) << bad.error;
  ASSERT_TRUE(good.ok) << good.error;
  for (const char* name : {"Pos", "Force"}) {
    const pm::VariableBlame* b = bad.aggregate.find(name);
    const pm::VariableBlame* g = good.aggregate.find(name);
    ASSERT_NE(b, nullptr) << name;
    ASSERT_NE(g, nullptr) << name;
    double badRemote = 100.0 * static_cast<double>(b->remoteSamples()) / b->sampleCount;
    double goodRemote = 100.0 * static_cast<double>(g->remoteSamples()) / g->sampleCount;
    EXPECT_GT(badRemote, 50.0) << name << " should be remote-dominated under Cyclic";
    EXPECT_LT(goodRemote, 50.0) << name << " should be local-dominated under Block";
    EXPECT_GT(badRemote, goodRemote) << name;
  }
}

TEST(MultiLocaleComm, OnForksAreCountedPerLocale) {
  // Every SPMD rank executes numSteps * numLocales `on` blocks, of which
  // numLocales - 1 per step target a different locale and fork.
  Profiler p;
  p.options().run.numLocales = 4;
  p.options().run.localeId = 1;
  ASSERT_TRUE(p.profileFile(assetProgram("minimd_badloc"))) << p.lastError();
  EXPECT_EQ(p.runResult()->log.commOnForks, 4u * 3u);  // numSteps=4, 3 remote targets
  EXPECT_GT(p.runResult()->log.commGets, 0u);
  EXPECT_GT(p.runResult()->log.commPuts, 0u);
}

// ---------------------------------------------------------------------------
// Failing locales: ALL of them surface, completed reports are kept.
// ---------------------------------------------------------------------------

TEST(MultiLocaleErrors, AllFailuresSurfacedAndPartialReportsKept) {
  // Locales 1 and 2 divide by zero; locales 0 and 3 complete. The result
  // must name both failures (not just the first) and still aggregate the
  // two completed locales.
  std::string path = ::testing::TempDir() + "cb_multilocale_partial.chpl";
  {
    std::ofstream out(path);
    out << "proc main() {\n"
           "  var s = 0;\n"
           "  for i in 0..#200 { s += i; }\n"
           "  if here.id == 1 { var z = s / (here.id - 1); writeln(z); }\n"
           "  if here.id == 2 { var z = s / (here.id - 2); writeln(z); }\n"
           "  writeln(s);\n"
           "}\n";
  }
  ProfileOptions o;
  o.run.sampleThreshold = 101;  // the program is tiny; make sure it samples
  MultiLocaleResult r = profileMultiLocale(path, 4, o);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.localeErrors.size(), 4u);
  EXPECT_TRUE(r.localeErrors[0].empty()) << r.localeErrors[0];
  EXPECT_FALSE(r.localeErrors[1].empty());
  EXPECT_FALSE(r.localeErrors[2].empty());
  EXPECT_TRUE(r.localeErrors[3].empty()) << r.localeErrors[3];
  EXPECT_NE(r.error.find("locale 1"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("locale 2"), std::string::npos) << r.error;
  // Completed locales keep their reports and drive the aggregate.
  ASSERT_EQ(r.perLocale.size(), 4u);
  EXPECT_FALSE(r.perLocale[0].rows.empty());
  EXPECT_TRUE(r.perLocale[1].rows.empty());
  EXPECT_TRUE(r.perLocale[2].rows.empty());
  EXPECT_FALSE(r.perLocale[3].rows.empty());
  pm::BlameReport expected = pm::aggregateAcrossLocales({&r.perLocale[0], &r.perLocale[3]});
  EXPECT_EQ(r.aggregate, expected);
}

TEST(MultiLocaleErrors, TotalFailureAggregatesToEmpty) {
  std::string path = ::testing::TempDir() + "cb_multilocale_allfail.chpl";
  {
    std::ofstream out(path);
    out << "proc main() { var z = 1 / (numLocales - numLocales); writeln(z); }\n";
  }
  MultiLocaleResult r = profileMultiLocale(path, 3);
  EXPECT_FALSE(r.ok);
  for (const std::string& e : r.localeErrors) EXPECT_FALSE(e.empty());
  EXPECT_TRUE(r.aggregate.rows.empty());
  EXPECT_EQ(r.aggregate.totalRawSamples, 0u);
}

// ---------------------------------------------------------------------------
// Golden fixtures: comm and per-locale views at 4 locales, byte-pinned.
// ---------------------------------------------------------------------------

std::string goldenPath(const std::string& program, const char* view) {
  return std::string(kGoldenDir) + "/" + program + "_" + view + "4.txt";
}

std::string renderComm(const MultiLocaleResult& r) {
  return rpt::commView(r.aggregate, {1000, 0.0});  // all rows, no floor
}

std::string renderLocale(const MultiLocaleResult& r) {
  return rpt::perLocaleView(r.perLocale, {1000, 0.0});
}

void checkGolden(const std::string& rendered, const std::string& path) {
  if (test::g_updateGolden) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << rendered;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing fixture " << path << "; run `cb_tests --update-golden`";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(rendered, expected.str())
      << "golden mismatch for " << path
      << "; if intentional, regenerate with `cb_tests --update-golden`";
}

class MultiLocaleGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(MultiLocaleGolden, CommViewMatchesFixture) {
  const MultiLocaleResult& r = profiled4(GetParam());
  ASSERT_TRUE(r.ok) << r.error;
  checkGolden(renderComm(r), goldenPath(GetParam(), "comm"));
}

TEST_P(MultiLocaleGolden, PerLocaleViewMatchesFixture) {
  const MultiLocaleResult& r = profiled4(GetParam());
  ASSERT_TRUE(r.ok) << r.error;
  checkGolden(renderLocale(r), goldenPath(GetParam(), "locale"));
}

TEST_P(MultiLocaleGolden, SequentialLocalesMatchFixture) {
  // The locale pool must land on the same golden bytes as a fully
  // sequential locale loop (the bit-identical acceptance bar, per program).
  ProfileOptions o;
  o.localeWorkers = 1;
  MultiLocaleResult r = profileMultiLocale(assetProgram(GetParam()), 4, o);
  ASSERT_TRUE(r.ok) << r.error;
  std::ifstream in(goldenPath(GetParam(), "comm"), std::ios::binary);
  if (test::g_updateGolden && !in) return;  // fixture being created by the twin test
  ASSERT_TRUE(in) << "missing fixture " << goldenPath(GetParam(), "comm");
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(renderComm(r), expected.str());
}

INSTANTIATE_TEST_SUITE_P(Programs, MultiLocaleGolden,
                         ::testing::Values("minimd_badloc", "minimd_blockloc", "clomp"));

}  // namespace
}  // namespace cb
