// Tests of the presentation layer: data-centric / code-centric / pprof /
// hybrid views and CSV output — plus the golden-report regression fixtures
// for the three paper benchmarks (regenerate with `cb_tests --update-golden`).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cb_config.h"
#include "report/views.h"
#include "test_util.h"

namespace cb {
namespace {

const char* kProgram = R"(const D = {0..#64};
var A: [D] real;
proc kernel() {
  forall i in D {
    var t = 0.0;
    for j in 0..#40 {
      t += i * j;
    }
    A[i] = t;
  }
}
proc main() {
  kernel();
}
)";

Profiler profiled() {
  ProfileOptions o;
  o.run.sampleThreshold = 101;
  return test::profileSource(kProgram, o);
}

TEST(Report, DataCentricViewHasHeaderAndRows) {
  Profiler p = profiled();
  std::string v = rpt::dataCentricView(*p.blameReport(), {25, 0.0});
  EXPECT_NE(v.find("Name"), std::string::npos);
  EXPECT_NE(v.find("Blame"), std::string::npos);
  EXPECT_NE(v.find("Context"), std::string::npos);
  EXPECT_NE(v.find("A"), std::string::npos);
  EXPECT_NE(v.find("user samples"), std::string::npos);
}

TEST(Report, MinPercentFiltersRows) {
  Profiler p = profiled();
  std::string all = rpt::dataCentricView(*p.blameReport(), {100, 0.0});
  std::string filtered = rpt::dataCentricView(*p.blameReport(), {100, 99.5});
  EXPECT_GT(all.size(), filtered.size());
}

TEST(Report, CsvHasOneLinePerRow) {
  Profiler p = profiled();
  std::string csv = rpt::dataCentricCsv(*p.blameReport());
  size_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, p.blameReport()->rows.size() + 1);  // + header
  EXPECT_EQ(csv.rfind("name,type,blame_percent,samples,context", 0), 0u);
}

TEST(Report, CodeCentricCountsSelfAndInclusive) {
  Profiler p = profiled();
  const rpt::CodeCentricReport& r = *p.codeReport();
  uint64_t totalSelf = 0;
  for (const auto& row : r.rows) {
    EXPECT_GE(row.inclusive, row.self);
    totalSelf += row.self;
  }
  EXPECT_EQ(totalSelf, r.totalSamples);  // self-counts partition the samples
}

TEST(Report, CodeCentricMainHasFullInclusive) {
  Profiler p = profiled();
  const rpt::CodeCentricReport& r = *p.codeReport();
  uint64_t idle = 0;
  for (const auto& row : r.rows)
    if (row.function.rfind("__", 0) == 0 || row.function.rfind("chpl_", 0) == 0)
      idle += row.self;
  for (const auto& row : r.rows) {
    if (row.function != "main") continue;
    // Nearly all non-idle samples sit under main; the remainder belongs to
    // _module_init (global initialization runs before main).
    EXPECT_LE(row.inclusive, r.totalSamples - idle);
    EXPECT_GE(row.inclusive, (r.totalSamples - idle) * 9 / 10);
  }
}

TEST(Report, PprofFormatMatchesGperftools) {
  Profiler p = profiled();
  std::string out = rpt::pprofView(*p.codeReport(), "kernelprog");
  EXPECT_EQ(out.rfind("Using local file ./kernelprog.", 0), 0u);
  EXPECT_NE(out.find("Total: "), std::string::npos);
  EXPECT_NE(out.find("%"), std::string::npos);
}

TEST(Report, PprofManglesUserFunctions) {
  Profiler p = profiled();
  std::string out = rpt::pprofView(*p.codeReport(), "prog", 50);
  EXPECT_NE(out.find("kernel_chpl"), std::string::npos);
}

TEST(Report, HybridViewGroupsByBlamePoint) {
  Profiler p = profiled();
  std::string out = rpt::hybridView(*p.blameReport(), {25, 0.0});
  EXPECT_NE(out.find("blame point: main"), std::string::npos);
  EXPECT_NE(out.find("blame point: kernel"), std::string::npos);
}

TEST(Report, GuiViewCombinesBothPanes) {
  Profiler p = profiled();
  std::string out = p.guiText();
  EXPECT_NE(out.find("Code-centric view"), std::string::npos);
  EXPECT_NE(out.find("Data-centric (blame) view"), std::string::npos);
}

TEST(Report, BaselineViewListsUnknownData) {
  Profiler p = profiled();
  std::string out = rpt::baselineView(p.baselineReport());
  EXPECT_NE(out.find("unknown data"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden-report fixtures: the data-centric text view of the three paper
// benchmarks, pinned byte-for-byte under tests/golden/. The substrate is a
// deterministic VM, so any diff is a real behavior change — either a bug or
// an intentional change that must be re-blessed with --update-golden.
// ---------------------------------------------------------------------------

std::string goldenPath(const std::string& program) {
  return std::string(kGoldenDir) + "/" + program + "_datacentric.txt";
}

std::string renderDataCentric(Profiler& p) {
  // Show everything: all rows, no percentage floor — maximum sensitivity.
  return rpt::dataCentricView(*p.blameReport(), {1000, 0.0});
}

class GoldenReport : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenReport, DataCentricTextMatchesFixture) {
  Profiler p;  // default options: paper-scale threshold, sequential-or-auto
  ASSERT_TRUE(p.profileFile(assetProgram(GetParam()))) << p.lastError();
  std::string rendered = renderDataCentric(p);
  std::string path = goldenPath(GetParam());
  if (test::g_updateGolden) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << rendered;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing fixture " << path << "; run `cb_tests --update-golden`";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(rendered, expected.str())
      << "golden mismatch for " << GetParam()
      << "; if intentional, regenerate with `cb_tests --update-golden`";
}

TEST_P(GoldenReport, ParallelWorkersMatchFixture) {
  // The sharded pipeline must land on the same golden bytes as the
  // sequential path (the PR's bit-identical acceptance bar, per program).
  Profiler p;
  p.options().postmortem.workers = 4;
  ASSERT_TRUE(p.profileFile(assetProgram(GetParam()))) << p.lastError();
  std::string rendered = renderDataCentric(p);
  std::ifstream in(goldenPath(GetParam()), std::ios::binary);
  if (test::g_updateGolden && !in) return;  // fixture being created by the twin test
  ASSERT_TRUE(in) << "missing fixture " << goldenPath(GetParam());
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(rendered, expected.str());
}

INSTANTIATE_TEST_SUITE_P(Programs, GoldenReport,
                         ::testing::Values("minimd", "clomp", "lulesh"));

}  // namespace
}  // namespace cb
