// End-to-end language/runtime semantics tests: compile a snippet, execute
// it, assert on the writeln output (and on runtime errors).
#include <gtest/gtest.h>

#include "test_util.h"

namespace cb {
namespace {

using test::runOutput;

TEST(Interp, WritelnScalars) {
  EXPECT_EQ(runOutput("proc main() { writeln(42, 2.5, true, \"hi\"); }"), "42 2.5 true hi\n");
}

TEST(Interp, IntegerArithmetic) {
  EXPECT_EQ(runOutput("proc main() { writeln(7 + 3 * 2, 7 / 2, 7 % 2, -5); }"), "13 3 1 -5\n");
}

TEST(Interp, RealArithmeticAndCoercion) {
  EXPECT_EQ(runOutput("proc main() { writeln(1 + 0.5, 3.0 / 2, 2.0 ** 3.0); }"),
            "1.5 1.5 8\n");
}

TEST(Interp, Comparisons) {
  EXPECT_EQ(runOutput("proc main() { writeln(1 < 2, 2 <= 2, 3 != 3, 1.5 > 1); }"),
            "true true false true\n");
}

TEST(Interp, BooleanOps) {
  EXPECT_EQ(runOutput("proc main() { writeln(true && false, true || false, !true); }"),
            "false true false\n");
}

TEST(Interp, MinMaxAbsSqrt) {
  EXPECT_EQ(runOutput("proc main() { writeln(min(3, 7), max(2.5, 1.0), abs(-4), sqrt(9.0)); }"),
            "3 2.5 4 3\n");
}

TEST(Interp, IfElse) {
  EXPECT_EQ(runOutput("proc main() { var x = 5; if x > 3 { writeln(\"big\"); } else { "
                      "writeln(\"small\"); } }"),
            "big\n");
}

TEST(Interp, IfThenShortForm) {
  EXPECT_EQ(runOutput("proc main() { var a = 2; var b = 3; if a < b then a = b + 1; "
                      "writeln(a); }"),
            "4\n");
}

TEST(Interp, WhileLoop) {
  EXPECT_EQ(runOutput("proc main() { var i = 0; var s = 0; while i < 5 { s += i; i += 1; } "
                      "writeln(s); }"),
            "10\n");
}

TEST(Interp, ForOverRange) {
  EXPECT_EQ(runOutput("proc main() { var s = 0; for i in 1..4 { s += i; } writeln(s); }"),
            "10\n");
}

TEST(Interp, ForOverCountedRange) {
  EXPECT_EQ(runOutput("proc main() { var s = 0; for i in 3..#4 { s += i; } writeln(s); }"),
            "18\n");  // 3+4+5+6
}

TEST(Interp, ForParamUnrolls) {
  EXPECT_EQ(runOutput("proc main() { var t: 4*int; for param k in 1..4 { t(k) = k * k; } "
                      "writeln(t); }"),
            "(1, 4, 9, 16)\n");
}

TEST(Interp, NestedLoops) {
  EXPECT_EQ(runOutput("proc main() { var s = 0; for i in 0..2 { for j in 0..2 { s += i * j; } "
                      "} writeln(s); }"),
            "9\n");
}

TEST(Interp, ProcCallAndReturn) {
  EXPECT_EQ(runOutput("proc sq(x: int): int { return x * x; }\n"
                      "proc main() { writeln(sq(7)); }"),
            "49\n");
}

TEST(Interp, RefParamWritesBack) {
  EXPECT_EQ(runOutput("proc bump(ref x: int) { x = x + 1; }\n"
                      "proc main() { var v = 10; bump(v); bump(v); writeln(v); }"),
            "12\n");
}

TEST(Interp, ValueParamDoesNotWriteBack) {
  EXPECT_EQ(runOutput("proc f(x: int): int { x = 99; return x; }\n"
                      "proc main() { var v = 1; var r = f(v); writeln(v, r); }"),
            "1 99\n");
}

TEST(Interp, RecursionWorks) {
  EXPECT_EQ(runOutput("proc fib(n: int): int { if n < 2 then return n; return fib(n-1) + "
                      "fib(n-2); }\nproc main() { writeln(fib(10)); }"),
            "55\n");
}

TEST(Interp, TupleValueSemantics) {
  EXPECT_EQ(runOutput("proc main() { var a = (1, 2); var b = a; b(1) = 99; writeln(a, b); }"),
            "(1, 2) (99, 2)\n");
}

TEST(Interp, TupleElementwiseArithmetic) {
  EXPECT_EQ(runOutput("proc main() { var a = (1.0, 2.0, 3.0); var b = (0.5, 0.5, 0.5); "
                      "writeln(a + b, a * 2.0); }"),
            "(1.5, 2.5, 3.5) (2, 4, 6)\n");
}

TEST(Interp, DynamicTupleIndexing) {
  EXPECT_EQ(runOutput("proc main() { var t = (10.0, 20.0, 30.0); var s = 0.0; "
                      "for i in 1..3 { s += t(i); } writeln(s); }"),
            "60\n");
}

TEST(Interp, RecordFieldsAndCopySemantics) {
  EXPECT_EQ(runOutput("record P { var x: int; var y: real; }\n"
                      "proc main() { var p: P; p.x = 3; p.y = 1.5; var q = p; q.x = 9; "
                      "writeln(p.x, q.x, p.y); }"),
            "3 9 1.5\n");
}

TEST(Interp, ArraysOverDomains) {
  EXPECT_EQ(runOutput("const D = {0..#5};\nvar A: [D] int;\n"
                      "proc main() { for i in D { A[i] = i * i; } writeln(A[3], A.size); }"),
            "9 5\n");
}

TEST(Interp, ArrayReferenceSemantics) {
  // Chapel arrays alias on assignment-by-initialization of a var (handle
  // copy); writes through one name are visible through the other.
  EXPECT_EQ(runOutput("const D = {0..#3};\nvar A: [D] int;\n"
                      "proc main() { var B => A[D]; B[1] = 42; writeln(A[1]); }"),
            "42\n");
}

TEST(Interp, WholeArrayFillAndCopy) {
  EXPECT_EQ(runOutput("const D = {0..#4};\nvar A: [D] real;\nvar B: [D] real;\n"
                      "proc main() { A = 2.5; B = A; writeln(B[0] + B[3]); }"),
            "5\n");
}

TEST(Interp, TwoDimensionalArrays) {
  EXPECT_EQ(runOutput("const D = {0..#3, 0..#4};\nvar A: [D] int;\n"
                      "proc main() { for (i, j) in D { A[i, j] = i * 10 + j; } "
                      "writeln(A[2, 3], A.size); }"),
            "23 12\n");
}

TEST(Interp, DomainExpandAndDims) {
  EXPECT_EQ(runOutput("const D = {0..#4};\nconst E = D.expand(1);\n"
                      "proc main() { writeln(E.size, E.low(1), E.high(1)); }"),
            "6 -1 4\n");
}

TEST(Interp, ArraySliceAliasesBase) {
  EXPECT_EQ(runOutput("const D = {0..#6};\nconst Inner = {1..4};\nvar A: [D] int;\n"
                      "var V => A[Inner];\n"
                      "proc main() { V[2] = 7; writeln(A[2], V.size); }"),
            "7 4\n");
}

TEST(Interp, SliceOutOfViewDomainFails) {
  auto c = fe::Compilation::fromString(
      "t.chpl",
      "const D = {0..#6};\nconst Inner = {1..4};\nvar A: [D] int;\nvar V => A[Inner];\n"
      "proc main() { V[5] = 1; }");
  ASSERT_TRUE(c->ok());
  rt::RunOptions o;
  o.sampleThreshold = 0;
  rt::RunResult r = rt::execute(c->module(), o);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("out of bounds"), std::string::npos);
}

TEST(Interp, NestedArrays) {
  EXPECT_EQ(runOutput("const Outer = {0..#3};\nconst Inner = {0..#2};\n"
                      "var A: [Outer] [Inner] real;\n"
                      "proc main() { A[1][0] = 2.5; A[1][1] = 0.5; "
                      "writeln(A[1][0] + A[1][1], A[0][0]); }"),
            "3 0\n");
}

TEST(Interp, RecordWithArrayField) {
  EXPECT_EQ(runOutput("config const nz = 4;\nconst Z = {0..#nz};\n"
                      "record Part { var residue: real; var zones: [Z] real; }\n"
                      "var P: Part;\n"
                      "proc main() { P.zones[2] = 1.5; P.residue = 0.5; "
                      "writeln(P.zones[2] + P.residue, P.zones.size); }"),
            "2 4\n");
}

TEST(Interp, ArrayOfRecordsWithArrayFields) {
  EXPECT_EQ(runOutput("const PD = {0..#3};\nconst Z = {0..#2};\n"
                      "record Part { var v: real; var zones: [Z] real; }\n"
                      "var parts: [PD] Part;\n"
                      "proc main() { parts[1].zones[1] = 9.0; parts[2].v = 1.0; "
                      "writeln(parts[1].zones[1], parts[0].zones[1], parts[2].v); }"),
            "9 0 1\n");
}

TEST(Interp, ForallComputesSameAsFor) {
  const char* forallSrc =
      "const D = {0..#100};\nvar A: [D] int;\n"
      "proc main() { forall i in D { A[i] = i * 3; } var s = 0; for i in D { s += A[i]; } "
      "writeln(s); }";
  const char* forSrc =
      "const D = {0..#100};\nvar A: [D] int;\n"
      "proc main() { for i in D { A[i] = i * 3; } var s = 0; for i in D { s += A[i]; } "
      "writeln(s); }";
  EXPECT_EQ(runOutput(forallSrc), runOutput(forSrc));
}

TEST(Interp, CoforallRunsAllIndices) {
  EXPECT_EQ(runOutput("const D = {0..#8};\nvar A: [D] int;\n"
                      "proc main() { coforall t in 0..#8 { A[t] = t + 1; } var s = 0; "
                      "for i in D { s += A[i]; } writeln(s); }"),
            "36\n");
}

TEST(Interp, ForallCapturesLocalByRef) {
  EXPECT_EQ(runOutput("const D = {0..#10};\nvar A: [D] int;\n"
                      "proc main() { var base = 5; forall i in D { A[i] = base + i; } "
                      "writeln(A[9]); }"),
            "14\n");
}

TEST(Interp, Forall2DDomain) {
  EXPECT_EQ(runOutput("const D = {0..#4, 0..#3};\nvar A: [D] int;\n"
                      "proc main() { forall (i, j) in D { A[i, j] = i + j; } "
                      "writeln(A[3, 2]); }"),
            "5\n");
}

TEST(Interp, ZippedForallOverArrays) {
  EXPECT_EQ(runOutput("const D = {0..#6};\nvar A: [D] int;\nvar B: [D] int;\n"
                      "proc main() { for i in D { A[i] = i; } "
                      "forall (a, b) in zip(A, B) { b = a * 2; } writeln(B[5]); }"),
            "10\n");
}

TEST(Interp, ZipWithDomainGivesIndex) {
  EXPECT_EQ(runOutput("const D = {0..#5};\nvar A: [D] int;\n"
                      "proc main() { forall (i, a) in zip(D, A) { a = i * i; } "
                      "writeln(A[4]); }"),
            "16\n");
}

TEST(Interp, NestedForallExecutesInline) {
  EXPECT_EQ(runOutput("const D = {0..#4};\nvar A: [D] [D] int;\n"
                      "proc main() { forall i in D { forall j in D { A[i][j] = i * 4 + j; } } "
                      "writeln(A[3][3]); }"),
            "15\n");
}

TEST(Interp, ConfigOverride) {
  rt::RunOptions o;
  o.sampleThreshold = 0;
  o.configOverrides["n"] = "7";
  EXPECT_EQ(runOutput("config const n = 3;\nproc main() { writeln(n * 2); }", o), "14\n");
}

TEST(Interp, ConfigDefaultWithoutOverride) {
  EXPECT_EQ(runOutput("config const n = 3;\nproc main() { writeln(n); }"), "3\n");
}

TEST(Interp, ConfigRealAndBoolOverrides) {
  rt::RunOptions o;
  o.sampleThreshold = 0;
  o.configOverrides["scale"] = "2.5";
  o.configOverrides["flag"] = "true";
  EXPECT_EQ(runOutput("config const scale = 1.0;\nconfig const flag = false;\n"
                      "proc main() { writeln(scale, flag); }",
                      o),
            "2.5 true\n");
}

TEST(Interp, DivisionByZeroFails) {
  auto c = fe::Compilation::fromString("t.chpl",
                                       "proc main() { var x = 3; var y = 0; writeln(x / y); }");
  ASSERT_TRUE(c->ok());
  rt::RunOptions o;
  o.sampleThreshold = 0;
  rt::RunResult r = rt::execute(c->module(), o);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("division by zero"), std::string::npos);
}

TEST(Interp, ArrayOutOfBoundsFails) {
  auto c = fe::Compilation::fromString(
      "t.chpl", "const D = {0..#4};\nvar A: [D] int;\nproc main() { A[9] = 1; }");
  ASSERT_TRUE(c->ok());
  rt::RunOptions o;
  o.sampleThreshold = 0;
  rt::RunResult r = rt::execute(c->module(), o);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("out of bounds"), std::string::npos);
}

TEST(Interp, InstructionBudgetGuard) {
  auto c = fe::Compilation::fromString("t.chpl",
                                       "proc main() { var i = 0; while i < 100000 { i += 1; } }");
  ASSERT_TRUE(c->ok());
  rt::RunOptions o;
  o.sampleThreshold = 0;
  o.maxInstructions = 1000;
  rt::RunResult r = rt::execute(c->module(), o);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("budget"), std::string::npos);
}

TEST(Interp, RandomIsDeterministicPerSeed) {
  const char* src = "proc main() { writeln(random(), random()); }";
  rt::RunOptions a;
  a.sampleThreshold = 0;
  a.rngSeed = 1;
  rt::RunOptions b = a;
  EXPECT_EQ(runOutput(src, a), runOutput(src, b));
  rt::RunOptions c2 = a;
  c2.rngSeed = 2;
  EXPECT_NE(runOutput(src, a), runOutput(src, c2));
}

TEST(Interp, ClockIsMonotonic) {
  EXPECT_EQ(runOutput("proc main() { var a = clock(); var i = 0; while i < 100 { i += 1; } "
                      "var b = clock(); writeln(b > a); }"),
            "true\n");
}

TEST(Interp, GlobalTupleOfTuples) {
  EXPECT_EQ(runOutput("const g: 2*(3*real) = ((1.0, 2.0, 3.0), (4.0, 5.0, 6.0));\n"
                      "proc main() { writeln(g(2)(1) + g(1)(3)); }"),
            "7\n");
}

TEST(Interp, MethodStyleTupleFieldIndexing) {
  EXPECT_EQ(runOutput("record atom { var force: 3*real; }\nconst D = {0..#2};\n"
                      "var Bins: [D] atom;\n"
                      "proc main() { Bins[1].force = (1.0, 2.0, 3.0); "
                      "writeln(Bins[1].force(2)); }"),
            "2\n");
}

TEST(Interp, MainThreadTotalCoversWorkers) {
  // The main clock must cover the parallel region (jump to max worker end).
  auto c = fe::Compilation::fromString(
      "t.chpl",
      "const D = {0..#1000};\nvar A: [D] real;\nproc main() { forall i in D { A[i] = i * 0.5; "
      "} }");
  ASSERT_TRUE(c->ok());
  rt::RunOptions o;
  o.sampleThreshold = 0;
  rt::RunResult serial = rt::execute(c->module(), o);
  ASSERT_TRUE(serial.ok);
  EXPECT_GT(serial.totalCycles, 0u);
  // With more workers the wall time shrinks.
  rt::RunOptions o1 = o;
  o1.numWorkers = 1;
  rt::RunResult one = rt::execute(c->module(), o1);
  EXPECT_GT(one.totalCycles, serial.totalCycles);
}

TEST(Interp, FastProfileIsFaster) {
  const char* src =
      "const D = {0..#500};\nvar A: [D] real;\n"
      "proc main() { for i in D { A[i] = i * 1.5; } }";
  auto c = fe::Compilation::fromString("t.chpl", src);
  ASSERT_TRUE(c->ok());
  rt::RunOptions slow;
  slow.sampleThreshold = 0;
  rt::RunOptions fast = slow;
  fast.fastCostProfile = true;
  EXPECT_LT(rt::execute(c->module(), fast).totalCycles,
            rt::execute(c->module(), slow).totalCycles);
}

}  // namespace
}  // namespace cb
