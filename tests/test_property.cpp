// Property-style parameterized suites (TEST_P): invariants that must hold
// across programs, thresholds, worker counts and compile modes — plus the
// grammar-based fuzz harness for the PGAS frontend (on / dmapped).
#include <gtest/gtest.h>

#include "ir/verifier.h"
#include "sampling/sample.h"
#include "support/rng.h"
#include "test_util.h"

namespace cb {
namespace {

// ---------------------------------------------------------------------------
// Invariants over the whole program corpus.
// ---------------------------------------------------------------------------

class CorpusInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusInvariants, PipelineSucceeds) {
  Profiler p;
  ASSERT_TRUE(p.profileFile(assetProgram(GetParam()))) << p.lastError();
}

TEST_P(CorpusInvariants, BlamePercentagesWithinBounds) {
  Profiler p;
  ASSERT_TRUE(p.profileFile(assetProgram(GetParam()))) << p.lastError();
  const pm::BlameReport& r = *p.blameReport();
  for (const pm::VariableBlame& row : r.rows) {
    EXPECT_GE(row.percent, 0.0) << row.name;
    EXPECT_LE(row.percent, 100.0) << row.name;
    EXPECT_LE(row.sampleCount, r.totalUserSamples) << row.name;
    EXPECT_FALSE(row.name.empty());
    EXPECT_FALSE(row.context.empty());
  }
}

TEST_P(CorpusInvariants, NoCompilerTempsInReport) {
  Profiler p;
  ASSERT_TRUE(p.profileFile(assetProgram(GetParam()))) << p.lastError();
  for (const pm::VariableBlame& row : p.blameReport()->rows) {
    EXPECT_EQ(row.name.rfind("_tmp", 0), std::string::npos) << row.name;
    EXPECT_EQ(row.name.find("chunk_"), std::string::npos) << row.name;
    EXPECT_EQ(row.name.find("_iter"), std::string::npos) << row.name;
  }
}

TEST_P(CorpusInvariants, CodeCentricSelfPartitionsSamples) {
  Profiler p;
  ASSERT_TRUE(p.profileFile(assetProgram(GetParam()))) << p.lastError();
  uint64_t sum = 0;
  for (const auto& row : p.codeReport()->rows) sum += row.self;
  EXPECT_EQ(sum, p.codeReport()->totalSamples);
}

TEST_P(CorpusInvariants, DeterministicEndToEnd) {
  Profiler a, b;
  ASSERT_TRUE(a.profileFile(assetProgram(GetParam())));
  ASSERT_TRUE(b.profileFile(assetProgram(GetParam())));
  EXPECT_EQ(a.runResult()->totalCycles, b.runResult()->totalCycles);
  EXPECT_EQ(a.runResult()->output, b.runResult()->output);
  ASSERT_EQ(a.blameReport()->rows.size(), b.blameReport()->rows.size());
  for (size_t i = 0; i < a.blameReport()->rows.size(); ++i) {
    EXPECT_EQ(a.blameReport()->rows[i].name, b.blameReport()->rows[i].name);
    EXPECT_EQ(a.blameReport()->rows[i].sampleCount, b.blameReport()->rows[i].sampleCount);
  }
}

TEST_P(CorpusInvariants, StaticBlameSetsInvertConsistently) {
  Profiler p;
  ASSERT_TRUE(p.profileFile(assetProgram(GetParam())));
  const ir::Module& m = p.compilation()->module();
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    const an::FunctionBlame& fb = p.moduleBlame()->fn(f);
    ASSERT_EQ(fb.blameInstrs.size(), fb.entities.size());
    ASSERT_EQ(fb.regionInstrs.size(), fb.entities.size());
    for (an::EntityId e = 0; e < fb.entities.size(); ++e) {
      for (ir::InstrId i : fb.blameInstrs[e]) {
        ASSERT_LT(i, fb.instrEntities.size());
        const auto& ents = fb.instrEntities[i];
        EXPECT_NE(std::find(ents.begin(), ents.end(), e), ents.end());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, CorpusInvariants,
                         ::testing::Values("example", "clomp", "clomp_opt", "minimd",
                                           "minimd_opt", "lulesh"));

// ---------------------------------------------------------------------------
// Sampling-threshold sweep: sample counts scale inversely; attribution of
// the dominant variable stays stable.
// ---------------------------------------------------------------------------

class ThresholdSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThresholdSweep, SampleCountTracksThreshold) {
  Profiler p;
  p.options().run.sampleThreshold = GetParam();
  ASSERT_TRUE(p.profileFile(assetProgram("clomp"))) << p.lastError();
  uint64_t samples = p.runResult()->log.samples.size();
  // Total busy cycles across streams is roughly streams x wall; expect the
  // sample count within a factor of 4 of cycles/threshold (idle emission
  // and per-stream remainders make it inexact).
  uint64_t wall = p.runResult()->totalCycles;
  uint64_t lower = wall / GetParam() / 2;
  uint64_t upper = 16 * wall / GetParam() + 64;
  EXPECT_GE(samples, lower);
  EXPECT_LE(samples, upper);
}

TEST_P(ThresholdSweep, DominantVariableStable) {
  Profiler p;
  p.options().run.sampleThreshold = GetParam();
  ASSERT_TRUE(p.profileFile(assetProgram("clomp"))) << p.lastError();
  const pm::VariableBlame* row = p.blameReport()->find("partArray");
  ASSERT_NE(row, nullptr);
  EXPECT_GT(row->percent, 90.0);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(997, 9973, 49999, 99991));

// ---------------------------------------------------------------------------
// Worker-count sweep: semantics invariant, wall time non-increasing from 1
// worker to many.
// ---------------------------------------------------------------------------

class WorkerSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WorkerSweep, OutputInvariant) {
  Profiler p;
  p.options().run.numWorkers = GetParam();
  p.options().run.sampleThreshold = 0;
  ASSERT_TRUE(p.compileFile(assetProgram("minimd")) && p.run()) << p.lastError();
  Profiler ref;
  ref.options().run.sampleThreshold = 0;
  ASSERT_TRUE(ref.compileFile(assetProgram("minimd")) && ref.run());
  EXPECT_EQ(p.runResult()->output, ref.runResult()->output);
}

TEST_P(WorkerSweep, MoreWorkersNeverSlower) {
  uint32_t w = GetParam();
  if (w == 1) return;
  auto cyclesWith = [&](uint32_t workers) {
    Profiler p;
    p.options().run.numWorkers = workers;
    p.options().run.sampleThreshold = 0;
    EXPECT_TRUE(p.compileFile(assetProgram("minimd")) && p.run());
    return p.runResult()->totalCycles;
  };
  EXPECT_LE(cyclesWith(w), cyclesWith(1));
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerSweep, ::testing::Values(1u, 2u, 4u, 12u, 32u));

// ---------------------------------------------------------------------------
// Compile-mode matrix: every program produces identical output with and
// without --fast (the pipeline must be semantics-preserving).
// ---------------------------------------------------------------------------

class FastModeMatrix : public ::testing::TestWithParam<const char*> {};

TEST_P(FastModeMatrix, OutputsMatch) {
  Profiler plain, fast;
  plain.options().run.sampleThreshold = 0;
  fast.options().run.sampleThreshold = 0;
  fast.options().compile.fast = true;
  ASSERT_TRUE(plain.compileFile(assetProgram(GetParam())) && plain.run()) << plain.lastError();
  ASSERT_TRUE(fast.compileFile(assetProgram(GetParam())) && fast.run()) << fast.lastError();
  EXPECT_EQ(plain.runResult()->output, fast.runResult()->output);
}

TEST_P(FastModeMatrix, FastRunsFewerInstructions) {
  Profiler plain, fast;
  plain.options().run.sampleThreshold = 0;
  fast.options().run.sampleThreshold = 0;
  fast.options().compile.fast = true;
  ASSERT_TRUE(plain.compileFile(assetProgram(GetParam())) && plain.run());
  ASSERT_TRUE(fast.compileFile(assetProgram(GetParam())) && fast.run());
  EXPECT_LE(fast.runResult()->instructionsExecuted, plain.runResult()->instructionsExecuted);
}

INSTANTIATE_TEST_SUITE_P(Programs, FastModeMatrix,
                         ::testing::Values("example", "clomp", "clomp_opt", "minimd",
                                           "minimd_opt", "lulesh"));

// ---------------------------------------------------------------------------
// CLOMP size sweep: the optimized variant must win at every problem shape,
// and outputs must agree pairwise.
// ---------------------------------------------------------------------------

struct ClompShape {
  int parts, zones;
};

class ClompShapeSweep : public ::testing::TestWithParam<ClompShape> {};

TEST_P(ClompShapeSweep, OptimizedMatchesAndWins) {
  auto run = [&](const char* prog) {
    Profiler p;
    p.options().run.sampleThreshold = 0;
    p.options().run.configOverrides["CLOMP_numParts"] = std::to_string(GetParam().parts);
    p.options().run.configOverrides["CLOMP_zonesPerPart"] = std::to_string(GetParam().zones);
    p.options().run.configOverrides["CLOMP_timeScale"] = "1";
    EXPECT_TRUE(p.compileFile(assetProgram(prog)) && p.run()) << p.lastError();
    return std::pair<std::string, uint64_t>(p.runResult()->output,
                                            p.runResult()->totalCycles);
  };
  auto [outO, cyclesO] = run("clomp");
  auto [outP, cyclesP] = run("clomp_opt");
  EXPECT_EQ(outO, outP);
  EXPECT_LT(cyclesP, cyclesO);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ClompShapeSweep,
                         ::testing::Values(ClompShape{4, 64}, ClompShape{64, 16},
                                           ClompShape{256, 4}, ClompShape{16, 256},
                                           ClompShape{1, 1024}));

// ---------------------------------------------------------------------------
// Grammar-based fuzzing of the PGAS frontend: a seeded generator over the
// mini-Chapel grammar — distributed (`dmapped Block`/`Cyclic`) and plain
// domains, `on Locales[e]` blocks (nested, `here.id`-relative, out-of-range
// targets that wrap), foralls, gathers, procedure calls, reductions, and
// Src/DstAggregator `with`-intent copies (buffered remote transfers).
// Every generated program must (a) get through parse + sema without
// crashing, (b) lower to a module the IR verifier accepts, and (c) execute
// bit-identically on the bytecode engine and the tree-walking reference
// oracle — RunLog (including the comm GET/PUT/fork counters), output and
// cycle totals. CI runs 10 shards x 50 programs = 500 programs.
// ---------------------------------------------------------------------------

std::string fuzzPgasProgram(uint64_t seed) {
  Rng rng(seed);
  auto pick = [&](uint32_t n) { return static_cast<uint32_t>(rng.nextBounded(n)); };
  auto num = [](uint64_t v) { return std::to_string(v); };
  uint32_t n = 8 + pick(40);  // array extent, kept small: 500 programs must be cheap
  const char* dists[] = {"", " dmapped Block", " dmapped Cyclic"};
  std::string s;
  s += "const D = {0..#" + num(n) + "}" + dists[pick(3)] + ";\n";
  s += "const E = {0..#" + num(n) + "}" + dists[pick(3)] + ";\n";
  s += "var a: [D] real;\nvar b: [E] real;\nvar c: [D] int;\n";
  s += "var g: [{0..#" + num(n) + "}] real;\n";  // plain staging array for aggregators

  s += "proc fill() {\n";
  s += "  forall i in D {\n";
  s += "    a[i] = i * " + num(1 + pick(5)) + ".5;\n";
  s += "    b[i] = i + 0.25;\n";
  s += "    c[i] = (i * " + num(1 + pick(7)) + ") % " + num(n) + ";\n";
  s += "  }\n";
  s += "}\n";

  // A callable kernel: calls inside `on` bodies exercise the locale
  // save/restore on function entry/exit in both engines.
  s += "proc sweep(lo: int, hi: int) {\n";
  s += "  for i in lo..hi {\n";
  s += "    b[i] = b[i] + a[i] * 0.5 + a[c[i]] * 0.125;\n";
  s += "  }\n";
  s += "}\n";

  // Random `on` targets: fixed locale, here-relative, or deliberately past
  // numLocales (the runtime wraps the target, so this must stay valid).
  const char* targets[] = {"0", "1", "2", "here.id", "here.id + 1", "numLocales - 1", "7"};
  uint32_t mid = n / 2;
  std::string body;
  uint32_t stmts = 1 + pick(3);
  for (uint32_t k = 0; k < stmts; ++k) {
    switch (pick(7)) {
      case 0:
        body += "    sweep(0, " + num(mid) + ");\n";
        break;
      case 1:
        body += "    sweep(" + num(mid) + ", " + num(n - 1) + ");\n";
        break;
      case 2:
        body += "    forall i in E { b[i] = b[i] + " + num(pick(3)) + ".5; }\n";
        break;
      case 3:
        body += "    for i in 0..#" + num(n) + " { a[i] = a[i] + b[i] * 0.25; }\n";
        break;
      case 4:
        // Aggregated gather: remote reads of a distributed table batched
        // into a plain staging array through a SrcAggregator task intent.
        body += "    forall i in D with (var ga = new SrcAggregator(real)) { "
                "ga.copy(g[i], a[i]); }\n";
        break;
      case 5:
        // Aggregated scatter: disjoint remote writes through a
        // DstAggregator (each index written once, so flush order is moot).
        body += "    forall i in E with (var da = new DstAggregator(real)) { "
                "da.copy(b[i], g[i] + " + num(pick(3)) + ".25); }\n";
        break;
      default:
        body += "    if here.id == " + num(pick(4)) + " { a[0] = a[0] + 1.0; }\n";
        break;
    }
  }
  s += "proc step() {\n";
  s += "  on Locales[" + std::string(targets[pick(7)]) + "] {\n" + body + "  }\n";
  if (pick(2) == 0) {
    // Nested `on`: re-targets from inside a remote block, then falls back.
    s += "  on Locales[" + std::string(targets[pick(7)]) + "] {\n";
    s += "    on Locales[here.id + " + num(1 + pick(2)) + "] { b[0] = b[0] + 0.5; }\n";
    s += "    a[" + num(n - 1) + "] = a[" + num(n - 1) + "] + 1.0;\n";
    s += "  }\n";
  }
  s += "}\n";

  s += "proc main() {\n";
  s += "  fill();\n";
  s += "  for t in 0..#" + num(1 + pick(3)) + " {\n";
  s += "    step();\n";
  if (pick(2) == 0) s += "    for l in 0..#numLocales { on Locales[l] { sweep(0, " + num(n - 1) + "); } }\n";
  s += "  }\n";
  s += "  var chk = 0.0;\n";
  s += "  for i in 0..#" + num(n) + " { chk = chk + a[i] + b[i] + c[i] + g[i]; }\n";
  s += "  writeln(\"chk:\", chk);\n";
  s += "}\n";
  return s;
}

class PropertyPgasFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertyPgasFuzz, FiftyProgramsVerifyAndMatchOracle) {
  for (uint64_t k = 0; k < 50; ++k) {
    uint64_t seed = GetParam() * 50 + k;
    std::string src = fuzzPgasProgram(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto c = fe::Compilation::fromString("fuzz.chpl", src, {});
    ASSERT_TRUE(c->ok()) << c->diags().renderAll() << "\n" << src;
    ASSERT_TRUE(ir::verifyModule(c->module()).empty()) << src;

    Rng rng(seed ^ 0xABCDEF);
    rt::RunOptions o;
    o.sampleThreshold = 997;
    o.numWorkers = 4;
    o.numLocales = 1 + static_cast<uint32_t>(rng.nextBounded(4));
    o.localeId = static_cast<uint32_t>(rng.nextBounded(o.numLocales));
    rt::RunOptions ref = o;
    ref.referenceInterp = true;
    rt::RunResult rb = rt::execute(c->module(), o);
    rt::RunResult rr = rt::execute(c->module(), ref);
    ASSERT_EQ(rb.ok, rr.ok) << rb.error << " vs " << rr.error << "\n" << src;
    ASSERT_TRUE(rb.ok) << rb.error << "\n" << src;
    ASSERT_TRUE(sampling::identical(rr.log, rb.log))
        << sampling::firstDifference(rr.log, rb.log) << "\n" << src;
    ASSERT_EQ(rb.output, rr.output) << src;
    ASSERT_EQ(rb.totalCycles, rr.totalCycles) << src;
    ASSERT_EQ(rb.instructionsExecuted, rr.instructionsExecuted) << src;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, PropertyPgasFuzz, ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace cb
