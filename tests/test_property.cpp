// Property-style parameterized suites (TEST_P): invariants that must hold
// across programs, thresholds, worker counts and compile modes.
#include <gtest/gtest.h>

#include "test_util.h"

namespace cb {
namespace {

// ---------------------------------------------------------------------------
// Invariants over the whole program corpus.
// ---------------------------------------------------------------------------

class CorpusInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusInvariants, PipelineSucceeds) {
  Profiler p;
  ASSERT_TRUE(p.profileFile(assetProgram(GetParam()))) << p.lastError();
}

TEST_P(CorpusInvariants, BlamePercentagesWithinBounds) {
  Profiler p;
  ASSERT_TRUE(p.profileFile(assetProgram(GetParam()))) << p.lastError();
  const pm::BlameReport& r = *p.blameReport();
  for (const pm::VariableBlame& row : r.rows) {
    EXPECT_GE(row.percent, 0.0) << row.name;
    EXPECT_LE(row.percent, 100.0) << row.name;
    EXPECT_LE(row.sampleCount, r.totalUserSamples) << row.name;
    EXPECT_FALSE(row.name.empty());
    EXPECT_FALSE(row.context.empty());
  }
}

TEST_P(CorpusInvariants, NoCompilerTempsInReport) {
  Profiler p;
  ASSERT_TRUE(p.profileFile(assetProgram(GetParam()))) << p.lastError();
  for (const pm::VariableBlame& row : p.blameReport()->rows) {
    EXPECT_EQ(row.name.rfind("_tmp", 0), std::string::npos) << row.name;
    EXPECT_EQ(row.name.find("chunk_"), std::string::npos) << row.name;
    EXPECT_EQ(row.name.find("_iter"), std::string::npos) << row.name;
  }
}

TEST_P(CorpusInvariants, CodeCentricSelfPartitionsSamples) {
  Profiler p;
  ASSERT_TRUE(p.profileFile(assetProgram(GetParam()))) << p.lastError();
  uint64_t sum = 0;
  for (const auto& row : p.codeReport()->rows) sum += row.self;
  EXPECT_EQ(sum, p.codeReport()->totalSamples);
}

TEST_P(CorpusInvariants, DeterministicEndToEnd) {
  Profiler a, b;
  ASSERT_TRUE(a.profileFile(assetProgram(GetParam())));
  ASSERT_TRUE(b.profileFile(assetProgram(GetParam())));
  EXPECT_EQ(a.runResult()->totalCycles, b.runResult()->totalCycles);
  EXPECT_EQ(a.runResult()->output, b.runResult()->output);
  ASSERT_EQ(a.blameReport()->rows.size(), b.blameReport()->rows.size());
  for (size_t i = 0; i < a.blameReport()->rows.size(); ++i) {
    EXPECT_EQ(a.blameReport()->rows[i].name, b.blameReport()->rows[i].name);
    EXPECT_EQ(a.blameReport()->rows[i].sampleCount, b.blameReport()->rows[i].sampleCount);
  }
}

TEST_P(CorpusInvariants, StaticBlameSetsInvertConsistently) {
  Profiler p;
  ASSERT_TRUE(p.profileFile(assetProgram(GetParam())));
  const ir::Module& m = p.compilation()->module();
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    const an::FunctionBlame& fb = p.moduleBlame()->fn(f);
    ASSERT_EQ(fb.blameInstrs.size(), fb.entities.size());
    ASSERT_EQ(fb.regionInstrs.size(), fb.entities.size());
    for (an::EntityId e = 0; e < fb.entities.size(); ++e) {
      for (ir::InstrId i : fb.blameInstrs[e]) {
        ASSERT_LT(i, fb.instrEntities.size());
        const auto& ents = fb.instrEntities[i];
        EXPECT_NE(std::find(ents.begin(), ents.end(), e), ents.end());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, CorpusInvariants,
                         ::testing::Values("example", "clomp", "clomp_opt", "minimd",
                                           "minimd_opt", "lulesh"));

// ---------------------------------------------------------------------------
// Sampling-threshold sweep: sample counts scale inversely; attribution of
// the dominant variable stays stable.
// ---------------------------------------------------------------------------

class ThresholdSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThresholdSweep, SampleCountTracksThreshold) {
  Profiler p;
  p.options().run.sampleThreshold = GetParam();
  ASSERT_TRUE(p.profileFile(assetProgram("clomp"))) << p.lastError();
  uint64_t samples = p.runResult()->log.samples.size();
  // Total busy cycles across streams is roughly streams x wall; expect the
  // sample count within a factor of 4 of cycles/threshold (idle emission
  // and per-stream remainders make it inexact).
  uint64_t wall = p.runResult()->totalCycles;
  uint64_t lower = wall / GetParam() / 2;
  uint64_t upper = 16 * wall / GetParam() + 64;
  EXPECT_GE(samples, lower);
  EXPECT_LE(samples, upper);
}

TEST_P(ThresholdSweep, DominantVariableStable) {
  Profiler p;
  p.options().run.sampleThreshold = GetParam();
  ASSERT_TRUE(p.profileFile(assetProgram("clomp"))) << p.lastError();
  const pm::VariableBlame* row = p.blameReport()->find("partArray");
  ASSERT_NE(row, nullptr);
  EXPECT_GT(row->percent, 90.0);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(997, 9973, 49999, 99991));

// ---------------------------------------------------------------------------
// Worker-count sweep: semantics invariant, wall time non-increasing from 1
// worker to many.
// ---------------------------------------------------------------------------

class WorkerSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WorkerSweep, OutputInvariant) {
  Profiler p;
  p.options().run.numWorkers = GetParam();
  p.options().run.sampleThreshold = 0;
  ASSERT_TRUE(p.compileFile(assetProgram("minimd")) && p.run()) << p.lastError();
  Profiler ref;
  ref.options().run.sampleThreshold = 0;
  ASSERT_TRUE(ref.compileFile(assetProgram("minimd")) && ref.run());
  EXPECT_EQ(p.runResult()->output, ref.runResult()->output);
}

TEST_P(WorkerSweep, MoreWorkersNeverSlower) {
  uint32_t w = GetParam();
  if (w == 1) return;
  auto cyclesWith = [&](uint32_t workers) {
    Profiler p;
    p.options().run.numWorkers = workers;
    p.options().run.sampleThreshold = 0;
    EXPECT_TRUE(p.compileFile(assetProgram("minimd")) && p.run());
    return p.runResult()->totalCycles;
  };
  EXPECT_LE(cyclesWith(w), cyclesWith(1));
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerSweep, ::testing::Values(1u, 2u, 4u, 12u, 32u));

// ---------------------------------------------------------------------------
// Compile-mode matrix: every program produces identical output with and
// without --fast (the pipeline must be semantics-preserving).
// ---------------------------------------------------------------------------

class FastModeMatrix : public ::testing::TestWithParam<const char*> {};

TEST_P(FastModeMatrix, OutputsMatch) {
  Profiler plain, fast;
  plain.options().run.sampleThreshold = 0;
  fast.options().run.sampleThreshold = 0;
  fast.options().compile.fast = true;
  ASSERT_TRUE(plain.compileFile(assetProgram(GetParam())) && plain.run()) << plain.lastError();
  ASSERT_TRUE(fast.compileFile(assetProgram(GetParam())) && fast.run()) << fast.lastError();
  EXPECT_EQ(plain.runResult()->output, fast.runResult()->output);
}

TEST_P(FastModeMatrix, FastRunsFewerInstructions) {
  Profiler plain, fast;
  plain.options().run.sampleThreshold = 0;
  fast.options().run.sampleThreshold = 0;
  fast.options().compile.fast = true;
  ASSERT_TRUE(plain.compileFile(assetProgram(GetParam())) && plain.run());
  ASSERT_TRUE(fast.compileFile(assetProgram(GetParam())) && fast.run());
  EXPECT_LE(fast.runResult()->instructionsExecuted, plain.runResult()->instructionsExecuted);
}

INSTANTIATE_TEST_SUITE_P(Programs, FastModeMatrix,
                         ::testing::Values("example", "clomp", "clomp_opt", "minimd",
                                           "minimd_opt", "lulesh"));

// ---------------------------------------------------------------------------
// CLOMP size sweep: the optimized variant must win at every problem shape,
// and outputs must agree pairwise.
// ---------------------------------------------------------------------------

struct ClompShape {
  int parts, zones;
};

class ClompShapeSweep : public ::testing::TestWithParam<ClompShape> {};

TEST_P(ClompShapeSweep, OptimizedMatchesAndWins) {
  auto run = [&](const char* prog) {
    Profiler p;
    p.options().run.sampleThreshold = 0;
    p.options().run.configOverrides["CLOMP_numParts"] = std::to_string(GetParam().parts);
    p.options().run.configOverrides["CLOMP_zonesPerPart"] = std::to_string(GetParam().zones);
    p.options().run.configOverrides["CLOMP_timeScale"] = "1";
    EXPECT_TRUE(p.compileFile(assetProgram(prog)) && p.run()) << p.lastError();
    return std::pair<std::string, uint64_t>(p.runResult()->output,
                                            p.runResult()->totalCycles);
  };
  auto [outO, cyclesO] = run("clomp");
  auto [outP, cyclesP] = run("clomp_opt");
  EXPECT_EQ(outO, outP);
  EXPECT_LT(cyclesP, cyclesO);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ClompShapeSweep,
                         ::testing::Values(ClompShape{4, 64}, ClompShape{64, 16},
                                           ClompShape{256, 4}, ClompShape{16, 256},
                                           ClompShape{1, 1024}));

}  // namespace
}  // namespace cb
