// Unit tests for the mini-Chapel lexer.
#include <gtest/gtest.h>

#include "frontend/lexer.h"

namespace cb::fe {
namespace {

std::vector<Token> lex(const std::string& src, bool expectErrors = false) {
  SourceManager sm;
  uint32_t f = sm.addBuffer("t.chpl", src);
  DiagnosticEngine d(sm);
  Lexer lexer(sm, f, d);
  auto toks = lexer.lexAll();
  EXPECT_EQ(d.hasErrors(), expectErrors) << d.renderAll();
  return toks;
}

std::vector<Tok> kinds(const std::string& src) {
  std::vector<Tok> out;
  for (const Token& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyGivesEof) {
  auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, Tok::Eof);
}

TEST(Lexer, Identifiers) {
  auto toks = lex("foo _bar b42");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "foo");
  EXPECT_EQ(toks[1].text, "_bar");
  EXPECT_EQ(toks[2].text, "b42");
}

TEST(Lexer, Keywords) {
  EXPECT_EQ(kinds("config const var record proc"),
            (std::vector<Tok>{Tok::KwConfig, Tok::KwConst, Tok::KwVar, Tok::KwRecord,
                              Tok::KwProc, Tok::Eof}));
  EXPECT_EQ(kinds("forall coforall for param zip type"),
            (std::vector<Tok>{Tok::KwForall, Tok::KwCoforall, Tok::KwFor, Tok::KwParam,
                              Tok::KwZip, Tok::KwType, Tok::Eof}));
}

TEST(Lexer, IntLiterals) {
  auto toks = lex("0 42 1_000_000");
  EXPECT_EQ(toks[0].intVal, 0);
  EXPECT_EQ(toks[1].intVal, 42);
  EXPECT_EQ(toks[2].intVal, 1000000);  // Chapel-style digit separators
}

TEST(Lexer, RealLiterals) {
  auto toks = lex("1.5 2e3 6.08e8 1.25e-2");
  EXPECT_DOUBLE_EQ(toks[0].realVal, 1.5);
  EXPECT_DOUBLE_EQ(toks[1].realVal, 2000.0);
  EXPECT_DOUBLE_EQ(toks[2].realVal, 6.08e8);
  EXPECT_DOUBLE_EQ(toks[3].realVal, 0.0125);
}

TEST(Lexer, RangeDoesNotEatDots) {
  // `0..n` must lex as int, dotdot, ident — not a malformed real.
  EXPECT_EQ(kinds("0..n"), (std::vector<Tok>{Tok::IntLit, Tok::DotDot, Tok::Ident, Tok::Eof}));
}

TEST(Lexer, CountedRange) {
  EXPECT_EQ(kinds("0..#n"),
            (std::vector<Tok>{Tok::IntLit, Tok::DotDot, Tok::Hash, Tok::Ident, Tok::Eof}));
}

TEST(Lexer, StringLiteralsWithEscapes) {
  auto toks = lex(R"("hello\nworld" "tab\t")");
  EXPECT_EQ(toks[0].text, "hello\nworld");
  EXPECT_EQ(toks[1].text, "tab\t");
}

TEST(Lexer, Operators) {
  EXPECT_EQ(kinds("+ - * / % **"),
            (std::vector<Tok>{Tok::Plus, Tok::Minus, Tok::Star, Tok::Slash, Tok::Percent,
                              Tok::StarStar, Tok::Eof}));
  EXPECT_EQ(kinds("== != < <= > >="),
            (std::vector<Tok>{Tok::EqEq, Tok::NotEq, Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge,
                              Tok::Eof}));
  EXPECT_EQ(kinds("= += -= *= /= =>"),
            (std::vector<Tok>{Tok::Assign, Tok::PlusAssign, Tok::MinusAssign, Tok::StarAssign,
                              Tok::SlashAssign, Tok::Arrow, Tok::Eof}));
  EXPECT_EQ(kinds("&& || !"),
            (std::vector<Tok>{Tok::AndAnd, Tok::OrOr, Tok::Not, Tok::Eof}));
}

TEST(Lexer, LineComments) {
  EXPECT_EQ(kinds("a // comment to end\nb"),
            (std::vector<Tok>{Tok::Ident, Tok::Ident, Tok::Eof}));
}

TEST(Lexer, BlockComments) {
  EXPECT_EQ(kinds("a /* multi\nline */ b"),
            (std::vector<Tok>{Tok::Ident, Tok::Ident, Tok::Eof}));
}

TEST(Lexer, UnterminatedBlockCommentIsError) { lex("a /* never closed", true); }

TEST(Lexer, UnterminatedStringIsError) { lex("\"no close", true); }

TEST(Lexer, UnexpectedCharacterIsError) { lex("a $ b", true); }

TEST(Lexer, LocationsTrackLinesAndColumns) {
  auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.col, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.col, 3u);
}

TEST(Lexer, MarkerCommentBetweenTokens) {
  // The Table VII variant generator relies on /*P1*/ sitting between `for`
  // and `param` without disturbing the token stream.
  EXPECT_EQ(kinds("for /*P1*/param j"),
            (std::vector<Tok>{Tok::KwFor, Tok::KwParam, Tok::Ident, Tok::Eof}));
}

}  // namespace
}  // namespace cb::fe
