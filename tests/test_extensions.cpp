// Tests of the paper's §VI future-work extensions implemented here:
// reduction expressions and multi-locale blame aggregation.
#include <gtest/gtest.h>

#include "test_util.h"

namespace cb {
namespace {

using test::runOutput;

// ---- reductions -----------------------------------------------------------

TEST(Reduce, SumOverArray) {
  EXPECT_EQ(runOutput("const D = {0..#5};\nvar A: [D] int;\n"
                      "proc main() { for i in D { A[i] = i; } writeln(+ reduce A); }"),
            "10\n");
}

TEST(Reduce, SumOverRealArray) {
  EXPECT_EQ(runOutput("const D = {0..#4};\nvar A: [D] real;\n"
                      "proc main() { A = 0.25; writeln(+ reduce A); }"),
            "1\n");
}

TEST(Reduce, ProductOverArray) {
  EXPECT_EQ(runOutput("const D = {0..#4};\nvar A: [D] int;\n"
                      "proc main() { for i in D { A[i] = i + 1; } writeln(* reduce A); }"),
            "24\n");
}

TEST(Reduce, MinAndMax) {
  EXPECT_EQ(runOutput("const D = {0..#5};\nvar A: [D] int;\n"
                      "proc main() { for i in D { A[i] = (i - 2) * (i - 2); } "
                      "writeln(min reduce A, max reduce A); }"),
            "0 4\n");
}

TEST(Reduce, WorksOnViews) {
  EXPECT_EQ(runOutput("const D = {0..#8};\nconst I = {2..4};\nvar A: [D] int;\n"
                      "var V => A[I];\n"
                      "proc main() { for i in D { A[i] = i; } writeln(+ reduce V); }"),
            "9\n");  // 2+3+4
}

TEST(Reduce, InsideExpression) {
  EXPECT_EQ(runOutput("const D = {0..#3};\nvar A: [D] int;\n"
                      "proc main() { for i in D { A[i] = 2; } var x = (+ reduce A) * 10; "
                      "writeln(x); }"),
            "60\n");
}

TEST(Reduce, TransfersBlameFromArray) {
  Profiler p = test::profileSource(R"(const D = {0..#512};
var A: [D] real;
proc main() {
  for i in D {
    A[i] = i * 0.5;
  }
  var total = + reduce A;
  writeln(total);
}
)",
                                   [] {
                                     ProfileOptions o;
                                     o.run.sampleThreshold = 101;
                                     return o;
                                   }());
  // `total` consumes A's values, so it inherits A's blame lines.
  const pm::VariableBlame* total = p.blameReport()->find("total");
  ASSERT_NE(total, nullptr) << p.dataCentricText();
  EXPECT_GT(total->percent, 30.0);
}

TEST(Reduce, NonArrayOperandIsError) {
  auto c = fe::Compilation::fromString("t.chpl", "proc main() { writeln(+ reduce 3); }");
  EXPECT_FALSE(c->ok());
}

// ---- multi-locale aggregation ----------------------------------------------

TEST(MultiLocale, AggregateSumsCounts) {
  pm::BlameReport a, b;
  a.totalUserSamples = 100;
  a.totalRawSamples = 110;
  a.rows.push_back({"Pos", "v3", "main", 90, 90.0});
  a.rows.push_back({"onlyA", "int", "main", 10, 10.0});
  b.totalUserSamples = 300;
  b.totalRawSamples = 330;
  b.rows.push_back({"Pos", "v3", "main", 150, 50.0});
  pm::BlameReport merged = pm::aggregateAcrossLocales({&a, &b});
  EXPECT_EQ(merged.totalUserSamples, 400u);
  const pm::VariableBlame* pos = merged.find("Pos");
  ASSERT_NE(pos, nullptr);
  EXPECT_EQ(pos->sampleCount, 240u);
  EXPECT_NEAR(pos->percent, 60.0, 1e-9);
  const pm::VariableBlame* onlyA = merged.find("onlyA");
  ASSERT_NE(onlyA, nullptr);
  EXPECT_NEAR(onlyA->percent, 2.5, 1e-9);
}

TEST(MultiLocale, EndToEndOverLocales) {
  MultiLocaleResult r = profileMultiLocale(assetProgram("clomp"), 3);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.perLocale.size(), 3u);
  uint64_t sum = 0;
  for (const pm::BlameReport& loc : r.perLocale) sum += loc.totalUserSamples;
  EXPECT_EQ(r.aggregate.totalUserSamples, sum);
  const pm::VariableBlame* partArray = r.aggregate.find("partArray");
  ASSERT_NE(partArray, nullptr);
  EXPECT_GT(partArray->percent, 90.0);
}

TEST(MultiLocale, HereIdReachesThePrograms) {
  // Each locale sees its own hereId config; outputs differ accordingly.
  MultiLocaleResult r = profileMultiLocale(assetProgram("clomp"), 2);
  ASSERT_TRUE(r.ok) << r.error;
  // (clomp ignores hereId; this just pins the plumbing via a direct run.)
  Profiler p;
  p.options().run.sampleThreshold = 0;
  p.options().run.configOverrides["hereId"] = "7";
  ASSERT_TRUE(p.profileString("t.chpl",
                              "config const hereId = 0;\nproc main() { writeln(hereId); }"))
      << p.lastError();
  EXPECT_EQ(p.runResult()->output, "7\n");
}

}  // namespace
}  // namespace cb
