// Custom gtest entry point: supports `cb_tests --update-golden`, which makes
// the golden-report suites rewrite their fixtures under tests/golden/ from
// the current pipeline output instead of comparing against them.
#include <gtest/gtest.h>

#include <cstring>

namespace cb::test {
bool g_updateGolden = false;
}

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--update-golden") == 0) cb::test::g_updateGolden = true;
  return RUN_ALL_TESTS();
}
