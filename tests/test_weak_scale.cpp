// Memory-bounded weak scaling tests. Two halves:
//
//  - WeakScaleProperty: the StreamingAggregator must finish bit-identically
//    to batch aggregateAcrossLocales on RANDOMIZED report sets — sparse
//    1024-locale comm matrices, arbitrary arrival permutations, two-level
//    shard partitions — and its footprint must be bounded by distinct rows,
//    not by reports folded.
//  - WeakScaleSmoke: the 1024-simulated-locale end-to-end run on the
//    weakscale.chpl ring program (constant per-locale work), with per-locale
//    reports dropped as they fold.
//
// Suites named WeakScale* carry the `weakscale` CTest label
// (tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <random>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "postmortem/attribution.h"
#include "test_util.h"

namespace cb {
namespace {

constexpr int32_t kLocales = 1024;

uint64_t cellSum(const std::vector<pm::CommCell>& cells) {
  uint64_t n = 0;
  for (const pm::CommCell& c : cells) n += c.samples;
  return n;
}

/// Random sparse comm matrix over 1024 locales: sorted by (src, dst), no
/// zero cells, src != dst — the well-formedness every real matrix has.
std::vector<pm::CommCell> randomCells(std::mt19937& rng, size_t maxCells) {
  std::uniform_int_distribution<int32_t> loc(0, kLocales - 1);
  std::uniform_int_distribution<uint64_t> samples(1, 997);
  std::uniform_int_distribution<size_t> howMany(0, maxCells);
  std::map<std::pair<int32_t, int32_t>, uint64_t> cells;
  for (size_t tries = howMany(rng); tries > 0; --tries) {
    int32_t s = loc(rng), d = loc(rng);
    if (s != d) cells[{s, d}] += samples(rng);
  }
  std::vector<pm::CommCell> out;
  out.reserve(cells.size());
  for (const auto& [key, n] : cells) out.push_back({key.first, key.second, n});
  return out;
}

/// Random per-locale report: rows drawn from a small (context, name, type)
/// pool so merges across reports actually collide, each with its own sparse
/// matrix. Percentages are left stale on purpose — finish() must recompute
/// them over the combined denominator.
pm::BlameReport randomReport(std::mt19937& rng) {
  static const char* kNames[] = {"Pos", "Force", "Ring", "Acc", "s", "Table"};
  static const char* kContexts[] = {"main", "kernel", "exchange"};
  static const char* kTypes[] = {"int", "real(64)", "[BlockDom] int"};
  std::uniform_int_distribution<size_t> ni(0, 5), ci(0, 2), ti(0, 2);
  std::uniform_int_distribution<uint64_t> samp(0, 500);
  std::uniform_int_distribution<int> howMany(1, 12);
  pm::BlameReport r;
  std::set<std::tuple<size_t, size_t, size_t>> used;
  for (int i = howMany(rng); i > 0; --i) {
    auto key = std::make_tuple(ci(rng), ni(rng), ti(rng));
    if (!used.insert(key).second) continue;  // keys are unique within a report
    pm::VariableBlame row;
    row.context = kContexts[std::get<0>(key)];
    row.name = kNames[std::get<1>(key)];
    row.type = kTypes[std::get<2>(key)];
    row.commMatrix = randomCells(rng, 8);
    uint64_t remote = cellSum(row.commMatrix);
    row.remotePutSamples = remote / 3;
    row.remoteGetSamples = remote - row.remotePutSamples;
    row.computeSamples = samp(rng);
    row.localSamples = samp(rng);
    row.sampleCount = row.computeSamples + row.localSamples + remote;
    row.percent = 50.0;  // deliberately wrong; the aggregate recomputes
    r.totalUserSamples += row.sampleCount;
    r.rows.push_back(std::move(row));
  }
  r.totalUserSamples += samp(rng);
  r.totalRawSamples = r.totalUserSamples + samp(rng);
  r.totalComm = randomCells(rng, 16);
  return r;
}

// ---------------------------------------------------------------------------
// Property: streaming ≡ batch, bit-identical, under any arrival order.
// ---------------------------------------------------------------------------

TEST(WeakScaleProperty, StreamingEqualsBatchUnderPermutation) {
  std::mt19937 rng(0xC0FFEE);
  for (int trial = 0; trial < 24; ++trial) {
    size_t n = 1 + static_cast<size_t>(trial) % 32;
    std::vector<pm::BlameReport> reports;
    reports.reserve(n);
    for (size_t i = 0; i < n; ++i) reports.push_back(randomReport(rng));
    std::vector<const pm::BlameReport*> ptrs;
    for (const pm::BlameReport& r : reports) ptrs.push_back(&r);
    pm::BlameReport batch = pm::aggregateAcrossLocales(ptrs);
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    for (int perm = 0; perm < 3; ++perm) {
      std::shuffle(order.begin(), order.end(), rng);
      pm::StreamingAggregator agg;
      for (size_t idx : order) agg.add(reports[idx]);
      EXPECT_EQ(agg.reportsAdded(), n);
      EXPECT_EQ(agg.finish(), batch) << "trial " << trial << " perm " << perm;
    }
  }
}

TEST(WeakScaleProperty, ShardedTwoLevelAggregationMatchesFlat) {
  // Aggregation must be associative: batch-combining shard aggregates (the
  // parallel post-mortem shape) lands on the same bytes as one flat fold.
  std::mt19937 rng(20260808);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<pm::BlameReport> reports;
    for (int i = 0; i < 12; ++i) reports.push_back(randomReport(rng));
    std::vector<const pm::BlameReport*> ptrs;
    for (const pm::BlameReport& r : reports) ptrs.push_back(&r);
    pm::BlameReport flat = pm::aggregateAcrossLocales(ptrs);
    std::uniform_int_distribution<size_t> shardOf(0, 2);
    std::vector<std::vector<const pm::BlameReport*>> shards(3);
    for (const pm::BlameReport& r : reports) shards[shardOf(rng)].push_back(&r);
    pm::StreamingAggregator agg;
    std::vector<pm::BlameReport> partials;
    for (const auto& shard : shards) partials.push_back(pm::aggregateAcrossLocales(shard));
    for (const pm::BlameReport& p : partials) agg.add(p);
    EXPECT_EQ(agg.finish(), flat) << "trial " << trial;
  }
}

TEST(WeakScaleProperty, EmptyStreamFinishesLikeEmptyBatch) {
  pm::StreamingAggregator agg;
  EXPECT_EQ(agg.reportsAdded(), 0u);
  EXPECT_EQ(agg.finish(), pm::aggregateAcrossLocales({}));
}

TEST(WeakScaleProperty, MemoryBoundedByDistinctRowsNotReports) {
  // The whole point of streaming: folding 1000 reports over the same key
  // pool must cost what folding 8 costs — the accumulator's footprint
  // tracks distinct aggregate rows, never the report count.
  std::mt19937 rng(7);
  pm::BlameReport r = randomReport(rng);
  pm::StreamingAggregator agg;
  for (int i = 0; i < 8; ++i) agg.add(r);
  size_t early = agg.approxMemoryBytes();
  ASSERT_GT(early, 0u);
  for (int i = 0; i < 992; ++i) agg.add(r);
  EXPECT_LE(agg.approxMemoryBytes(), 2 * early);
  pm::BlameReport total = agg.finish();
  EXPECT_EQ(total.totalUserSamples, 1000 * r.totalUserSamples);
  ASSERT_EQ(total.rows.size(), r.rows.size());
  for (const pm::VariableBlame& row : total.rows) {
    const pm::VariableBlame* orig = r.find(row.name);
    ASSERT_NE(orig, nullptr) << row.name;
    EXPECT_EQ(cellSum(row.commMatrix), 1000 * cellSum(orig->commMatrix)) << row.name;
  }
}

// ---------------------------------------------------------------------------
// End-to-end smoke at the full 1024-simulated-locale weak-scaling point.
// ---------------------------------------------------------------------------

TEST(WeakScaleSmoke, StreamedAggregateMatchesBatchAtSixtyFour) {
  // Real per-locale reports (not synthetic ones): the streamed aggregate of
  // a 64-locale ring run must equal the batch combine of the retained
  // reports, byte for byte.
  MultiLocaleResult r = profileMultiLocale(assetProgram("weakscale"), 64);
  ASSERT_TRUE(r.ok) << r.error;
  std::vector<const pm::BlameReport*> ptrs;
  for (const pm::BlameReport& rep : r.perLocale) ptrs.push_back(&rep);
  EXPECT_EQ(r.aggregate, pm::aggregateAcrossLocales(ptrs));
}

TEST(WeakScaleSmoke, ThousandLocalesBoundedAndRingShaped) {
  ProfileOptions o;
  o.keepPerLocaleReports = false;
  MultiLocaleResult r = profileMultiLocale(assetProgram("weakscale"), kLocales, o);
  ASSERT_TRUE(r.ok) << r.error;
  // Memory contract: every per-locale slot was dropped after folding.
  ASSERT_EQ(r.perLocale.size(), static_cast<size_t>(kLocales));
  for (const pm::BlameReport& rep : r.perLocale) EXPECT_TRUE(rep.rows.empty());
  EXPECT_FALSE(r.aggregate.rows.empty());
  EXPECT_GT(r.aggregate.totalUserSamples, 0u);
  // The program is a neighbor ring: every sampled remote pair must be
  // (l, l+1 mod 1024), and at the default threshold every rank samples its
  // exchange window, so the full 1024-cell ring shows up.
  ASSERT_EQ(r.aggregate.totalComm.size(), static_cast<size_t>(kLocales));
  for (const pm::CommCell& c : r.aggregate.totalComm) {
    EXPECT_GE(c.src, 0);
    EXPECT_LT(c.src, kLocales);
    EXPECT_EQ(c.dst, (c.src + 1) % kLocales) << c.src;
    EXPECT_GT(c.samples, 0u);
  }
}

}  // namespace
}  // namespace cb
