// Unit tests for the CIR layer: type uniquing/display, builder, verifier,
// printer.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace cb::ir {
namespace {

struct IrTest : ::testing::Test {
  StringInterner interner;
  SourceManager sm;
  Module mod{interner, sm};
};

TEST_F(IrTest, ScalarSingletons) {
  TypeContext& t = mod.types();
  EXPECT_EQ(t.kindOf(t.intTy()), TypeKind::Int);
  EXPECT_EQ(t.kindOf(t.realTy()), TypeKind::Real);
  EXPECT_EQ(t.kindOf(t.boolTy()), TypeKind::Bool);
  EXPECT_TRUE(t.isScalar(t.boolTy()));
  EXPECT_TRUE(t.isNumeric(t.realTy()));
  EXPECT_FALSE(t.isNumeric(t.boolTy()));
}

TEST_F(IrTest, TupleUniquing) {
  TypeContext& t = mod.types();
  TypeId a = t.homogeneousTuple(3, t.realTy());
  TypeId b = t.tuple({t.realTy(), t.realTy(), t.realTy()});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, t.homogeneousTuple(4, t.realTy()));
}

TEST_F(IrTest, RecordIsNominal) {
  TypeContext& t = mod.types();
  Symbol n = interner.intern("Part");
  TypeId r1 = t.record(n, {{interner.intern("x"), t.realTy()}});
  TypeId r2 = t.record(n, {});  // second registration returns the same id
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(t.findRecord(n), r1);
  EXPECT_EQ(t.findRecord(interner.intern("Nope")), kInvalidType);
}

TEST_F(IrTest, RefAndArrayUniquing) {
  TypeContext& t = mod.types();
  EXPECT_EQ(t.ref(t.intTy()), t.ref(t.intTy()));
  EXPECT_EQ(t.array(t.realTy(), 2), t.array(t.realTy(), 2));
  EXPECT_NE(t.array(t.realTy(), 1), t.array(t.realTy(), 2));
  EXPECT_EQ(t.pointee(t.ref(t.intTy())), t.intTy());
  EXPECT_EQ(t.arrayElem(t.array(t.realTy(), 1)), t.realTy());
}

TEST_F(IrTest, TypeDisplayChapelStyle) {
  TypeContext& t = mod.types();
  EXPECT_EQ(t.display(t.intTy(), interner), "int(64)");
  EXPECT_EQ(t.display(t.homogeneousTuple(8, t.realTy()), interner), "8*real");
  EXPECT_EQ(t.display(t.domain(2), interner), "domain");
  TypeId rec = t.record(interner.intern("Zone"), {});
  EXPECT_EQ(t.display(rec, interner), "Zone");
}

TEST_F(IrTest, BuilderProducesVerifiableFunction) {
  Function f;
  f.name = interner.intern("main");
  f.displayName = "main";
  f.returnType = mod.types().voidTy();
  IRBuilder b(mod, f);
  BlockId entry = b.newBlock("entry");
  b.setBlock(entry);
  ValueRef slot = b.alloca_(mod.types().intTy(), kNone);
  b.store(ValueRef::makeInt(7), slot);
  ValueRef v = b.load(slot, mod.types().intTy());
  ValueRef w = b.bin(BinKind::Add, v, ValueRef::makeInt(1), mod.types().intTy());
  b.store(w, slot);
  b.ret();
  mod.mainFunc = mod.addFunction(std::move(f));
  EXPECT_TRUE(verifyModule(mod).empty());
}

TEST_F(IrTest, VerifierCatchesUnterminatedBlock) {
  Function f;
  f.name = interner.intern("main");
  f.displayName = "main";
  f.returnType = mod.types().voidTy();
  IRBuilder b(mod, f);
  b.setBlock(b.newBlock("entry"));
  b.alloca_(mod.types().intTy(), kNone);  // no terminator
  mod.mainFunc = mod.addFunction(std::move(f));
  EXPECT_FALSE(verifyModule(mod).empty());
}

TEST_F(IrTest, VerifierCatchesBadBranchTarget) {
  Function f;
  f.name = interner.intern("main");
  f.displayName = "main";
  f.returnType = mod.types().voidTy();
  IRBuilder b(mod, f);
  b.setBlock(b.newBlock("entry"));
  b.br(17);  // out-of-range target
  mod.mainFunc = mod.addFunction(std::move(f));
  EXPECT_FALSE(verifyModule(mod).empty());
}

TEST_F(IrTest, VerifierCatchesOperandOfNoValue) {
  Function f;
  f.name = interner.intern("main");
  f.displayName = "main";
  f.returnType = mod.types().voidTy();
  IRBuilder b(mod, f);
  b.setBlock(b.newBlock("entry"));
  ValueRef slot = b.alloca_(mod.types().intTy(), kNone);
  b.store(ValueRef::makeInt(1), slot);  // instr #1: store (produces no value)
  b.store(ValueRef::makeReg(1), slot);  // uses the store's "result"
  b.ret();
  mod.mainFunc = mod.addFunction(std::move(f));
  EXPECT_FALSE(verifyModule(mod).empty());
}

TEST_F(IrTest, VerifierRequiresMain) {
  EXPECT_FALSE(verifyModule(mod).empty());  // empty module: no main
}

TEST_F(IrTest, SuccessorsOfTerminators) {
  Function f;
  f.name = interner.intern("main");
  f.displayName = "main";
  f.returnType = mod.types().voidTy();
  IRBuilder b(mod, f);
  BlockId entry = b.newBlock("entry");
  BlockId thenB = b.newBlock("then");
  BlockId elseB = b.newBlock("else");
  b.setBlock(entry);
  b.condBr(ValueRef::makeBool(true), thenB, elseB);
  b.setBlock(thenB);
  b.ret();
  b.setBlock(elseB);
  b.ret();
  EXPECT_EQ(f.successors(entry), (std::vector<BlockId>{thenB, elseB}));
  EXPECT_TRUE(f.successors(thenB).empty());
}

TEST_F(IrTest, PrinterShowsOpcodesAndRegisters) {
  Function f;
  f.name = interner.intern("main");
  f.displayName = "main";
  f.returnType = mod.types().voidTy();
  IRBuilder b(mod, f);
  b.setBlock(b.newBlock("entry"));
  ValueRef slot = b.alloca_(mod.types().realTy(), kNone);
  b.store(ValueRef::makeReal(2.5), slot);
  b.ret();
  FuncId id = mod.addFunction(std::move(f));
  std::string out = printFunction(mod, id);
  EXPECT_NE(out.find("alloca"), std::string::npos);
  EXPECT_NE(out.find("store"), std::string::npos);
  EXPECT_NE(out.find("%0"), std::string::npos);
  EXPECT_NE(out.find("ret"), std::string::npos);
}

TEST_F(IrTest, DomainValueHelpers) {
  // DomainMake/Expand semantics are covered by the runtime tests; here we
  // check the IR-level metadata (rank immediates).
  Function f;
  f.name = interner.intern("main");
  f.displayName = "main";
  f.returnType = mod.types().voidTy();
  IRBuilder b(mod, f);
  b.setBlock(b.newBlock("entry"));
  ValueRef d = b.domainMake({ValueRef::makeInt(0), ValueRef::makeInt(9)}, 1);
  b.domainExpand(d, ValueRef::makeInt(1), 1);
  b.domainSize(d);
  b.domainDim(d, 0, true);
  b.ret();
  FuncId id = mod.addFunction(std::move(f));
  const Function& fn = mod.function(id);
  EXPECT_EQ(fn.instrs[0].imm, 1u);                      // rank
  EXPECT_EQ(fn.instrs[3].imm, 1u);                      // dim 0, hi
  EXPECT_EQ(fn.instrs[3].op, Opcode::DomainDim);
}

}  // namespace
}  // namespace cb::ir
