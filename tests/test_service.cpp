// Tests of the cb-serve layer: wire-protocol round-trips and defensive
// decoding, the shared job runner (the thing that makes served == local a
// construction property rather than a hope), daemon lifecycle, per-job
// isolation, and the concurrent bit-identity soak at 1/2/4/8 in-flight jobs.
//
// Suite naming feeds the CTest labels: Service*.* carries the `service`
// label (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <thread>

#include "service/client.h"
#include "service/job.h"
#include "service/protocol.h"
#include "service/server.h"
#include "support/rng.h"
#include "test_util.h"

namespace cb {
namespace {

std::string freshSocket(const std::string& tag) {
  std::string path = ::testing::TempDir() + "/cb_svc_" + tag + ".sock";
  std::filesystem::remove(path);
  return path;
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(ServiceProtocol, RequestRoundTrip) {
  std::vector<std::string> argv = {"clomp", "--view", "data", "", "--config",
                                   "CLOMP_numParts=64"};
  std::vector<std::string> back;
  ASSERT_TRUE(svc::decodeRequest(svc::encodeRequest(argv), back));
  EXPECT_EQ(back, argv);
  ASSERT_TRUE(svc::decodeRequest(svc::encodeRequest({}), back));
  EXPECT_TRUE(back.empty());
}

TEST(ServiceProtocol, ResponseRoundTrip) {
  svc::JobResult r;
  r.exitCode = -7;
  r.out = std::string("stdout with \0 embedded", 22);
  r.err = "error text\n";
  svc::JobResult back;
  ASSERT_TRUE(svc::decodeResponse(svc::encodeResponse(r), back));
  EXPECT_EQ(back.exitCode, r.exitCode);
  EXPECT_EQ(back.out, r.out);
  EXPECT_EQ(back.err, r.err);
}

TEST(ServiceProtocol, DecodeRejectsMalformedPayloads) {
  std::vector<std::string> args;
  svc::JobResult job;
  EXPECT_FALSE(svc::decodeRequest("", args));
  EXPECT_FALSE(svc::decodeResponse("", job));
  // Trailing garbage after a valid encoding must be rejected.
  EXPECT_FALSE(svc::decodeRequest(svc::encodeRequest({"a"}) + "x", args));
  EXPECT_FALSE(svc::decodeResponse(svc::encodeResponse({}) + "x", job));
  // Length prefix pointing past the end of the payload.
  std::string lie;
  lie.push_back(1);     // argc = 1
  lie.push_back(100);   // arg length = 100, but no bytes follow
  EXPECT_FALSE(svc::decodeRequest(lie, args));
}

TEST(ServiceProtocol, FuzzedPayloadsNeverCrash) {
  Rng rng(0xFEED);
  std::string valid = svc::encodeRequest({"clomp", "--view", "data"});
  for (int trial = 0; trial < 300; ++trial) {
    std::string payload;
    if (trial % 3 == 0) {
      payload = valid.substr(0, rng.next() % (valid.size() + 1));
    } else {
      payload.resize(rng.next() % 64);
      for (auto& c : payload) c = static_cast<char>(rng.next());
    }
    std::vector<std::string> args;
    svc::JobResult job;
    svc::decodeRequest(payload, args);   // must not crash or overallocate
    svc::decodeResponse(payload, job);
  }
}

TEST(ServiceProtocol, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string payload = "hello frames";
  std::thread writer([&] { EXPECT_TRUE(svc::writeFrame(fds[0], payload)); });
  std::string got;
  EXPECT_TRUE(svc::readFrame(fds[1], got));
  writer.join();
  EXPECT_EQ(got, payload);
  // Over-cap length prefix is refused without allocating the announced size.
  uint32_t huge = 0xFFFFFFFFu;
  ASSERT_EQ(::write(fds[0], &huge, 4), 4);
  EXPECT_FALSE(svc::readFrame(fds[1], got));
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// Shared job runner
// ---------------------------------------------------------------------------

TEST(ServiceJob, UnknownFlagExitsTwoWithUsage) {
  svc::JobResult r = svc::runJob({"--definitely-not-a-flag"});
  EXPECT_EQ(r.exitCode, 2);
  EXPECT_NE(r.err.find("usage"), std::string::npos);
}

TEST(ServiceJob, MissingProgramFails) {
  svc::JobResult r = svc::runJob({"/no/such/program.chpl"});
  EXPECT_NE(r.exitCode, 0);
}

TEST(ServiceJob, ProfilesAssetAndPrintsDataView) {
  svc::JobResult r = svc::runJob({"minimd", "--view", "data"});
  EXPECT_EQ(r.exitCode, 0) << r.err;
  EXPECT_NE(r.out.find("Data-centric"), std::string::npos);
}

TEST(ServiceJob, FromLogStreamingMatchesDirectRun) {
  std::string logPath = ::testing::TempDir() + "/cb_svc_fromlog.cblog";
  svc::JobResult direct = svc::runJob({"minimd", "--view", "data", "--save-log", logPath});
  ASSERT_EQ(direct.exitCode, 0) << direct.err;
  // Re-analyzing the saved log through the streaming post-mortem must
  // reproduce the direct run's report byte for byte, at any chunk size.
  for (const char* chunk : {"1", "4096"}) {
    svc::JobResult replay = svc::runJob(
        {"minimd", "--view", "data", "--from-log", logPath, "--stream-chunk", chunk});
    EXPECT_EQ(replay.exitCode, 0) << replay.err;
    EXPECT_EQ(replay.out, direct.out) << "chunk=" << chunk;
  }
  std::filesystem::remove(logPath);
}

TEST(ServiceJob, FromLogRejectsViewsNeedingLiveState) {
  std::string logPath = ::testing::TempDir() + "/cb_svc_fromlog2.cblog";
  svc::JobResult direct = svc::runJob({"minimd", "--save-log", logPath});
  ASSERT_EQ(direct.exitCode, 0) << direct.err;
  svc::JobResult r = svc::runJob({"minimd", "--from-log", logPath, "--view", "pprof"});
  EXPECT_EQ(r.exitCode, 2);
  std::filesystem::remove(logPath);
}

TEST(ServiceJob, ResidentCacheHitSkipsRecompileAndMatches) {
  cache::ResidentProgramCache resident(8);
  svc::JobContext ctx;
  ctx.resident = &resident;
  svc::JobResult cold = svc::runJob({"minimd", "--view", "data"}, ctx);
  ASSERT_EQ(cold.exitCode, 0) << cold.err;
  EXPECT_EQ(resident.hits(), 0u);
  EXPECT_EQ(resident.size(), 1u);
  svc::JobResult warm = svc::runJob({"minimd", "--view", "data"}, ctx);
  ASSERT_EQ(warm.exitCode, 0) << warm.err;
  EXPECT_GE(resident.hits(), 1u);
  EXPECT_EQ(warm.out, cold.out);
  EXPECT_EQ(warm.err, cold.err);
}

// ---------------------------------------------------------------------------
// Daemon lifecycle + served bit-identity
// ---------------------------------------------------------------------------

TEST(ServiceDaemon, ServedJobBitIdenticalToLocal) {
  svc::ServerOptions sopts;
  sopts.socketPath = freshSocket("one");
  sopts.workers = 2;
  svc::Server server(sopts);
  ASSERT_TRUE(server.start()) << server.lastError();

  std::vector<std::string> argv = {"minimd", "--view", "data"};
  svc::JobResult local = svc::runJob(argv);
  svc::ClientResult served = svc::runRemote(sopts.socketPath, argv);
  ASSERT_TRUE(served.ok) << served.error;
  EXPECT_EQ(served.job.exitCode, local.exitCode);
  EXPECT_EQ(served.job.out, local.out);
  EXPECT_EQ(served.job.err, local.err);
  server.stop();
  EXPECT_EQ(server.requestsServed(), 1u);
  EXPECT_FALSE(std::filesystem::exists(sopts.socketPath));  // socket removed
}

TEST(ServiceDaemon, StartFailsOnUnbindablePath) {
  svc::ServerOptions sopts;
  sopts.socketPath = "/no/such/dir/cb.sock";
  svc::Server server(sopts);
  EXPECT_FALSE(server.start());
  EXPECT_FALSE(server.lastError().empty());
}

TEST(ServiceDaemon, MalformedFrameFailsConnectionNotDaemon) {
  svc::ServerOptions sopts;
  sopts.socketPath = freshSocket("mal");
  svc::Server server(sopts);
  ASSERT_TRUE(server.start()) << server.lastError();

  // Hand-roll a connection that sends a garbage payload in a valid frame:
  // the daemon must answer exit code 2, then serve the next client normally.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, sopts.socketPath.c_str(), sizeof(addr.sun_path) - 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_TRUE(svc::writeFrame(fd, "\xff\xff\xff garbage"));
  std::string payload;
  ASSERT_TRUE(svc::readFrame(fd, payload));
  svc::JobResult r;
  ASSERT_TRUE(svc::decodeResponse(payload, r));
  EXPECT_EQ(r.exitCode, 2);
  EXPECT_NE(r.err.find("malformed"), std::string::npos);
  ::close(fd);

  svc::ClientResult ok = svc::runRemote(sopts.socketPath, {"--help"});
  ASSERT_TRUE(ok.ok) << ok.error;
  server.stop();
}

TEST(ServiceDaemon, FailingJobDoesNotPoisonFollowingJobs) {
  svc::ServerOptions sopts;
  sopts.socketPath = freshSocket("poison");
  svc::Server server(sopts);
  ASSERT_TRUE(server.start()) << server.lastError();
  svc::ClientResult bad = svc::runRemote(sopts.socketPath, {"/no/such/prog.chpl"});
  ASSERT_TRUE(bad.ok) << bad.error;
  EXPECT_NE(bad.job.exitCode, 0);
  svc::ClientResult good = svc::runRemote(sopts.socketPath, {"minimd", "--view", "data"});
  ASSERT_TRUE(good.ok) << good.error;
  EXPECT_EQ(good.job.exitCode, 0) << good.job.err;
  server.stop();
  EXPECT_EQ(server.requestsServed(), 2u);
}

// The acceptance soak: at 1, 2, 4 and 8 concurrent in-flight jobs, every
// served response must be bit-identical to the local runJob answer for the
// same argv — the daemon's resident cache and thread pool must never leak
// one job's state into another.
TEST(ServiceSoak, ConcurrentJobsBitIdenticalAtEveryWidth) {
  const std::vector<std::vector<std::string>> jobs = {
      {"minimd", "--view", "data"},
      {"minimd", "--view", "code"},
      {"ig_naive", "--view", "data"},
      {"minimd", "--view", "data", "--threshold", "20011"},
  };
  std::vector<svc::JobResult> expected;
  for (const auto& argv : jobs) expected.push_back(svc::runJob(argv));

  for (uint32_t width : {1u, 2u, 4u, 8u}) {
    svc::ServerOptions sopts;
    sopts.socketPath = freshSocket("soak" + std::to_string(width));
    sopts.workers = width;
    svc::Server server(sopts);
    ASSERT_TRUE(server.start()) << server.lastError();

    const uint32_t requests = 2 * width;
    std::vector<std::thread> clients;
    std::vector<std::string> failures(requests);
    for (uint32_t i = 0; i < requests; ++i)
      clients.emplace_back([&, i] {
        const auto& argv = jobs[i % jobs.size()];
        const svc::JobResult& want = expected[i % jobs.size()];
        svc::ClientResult got = svc::runRemote(sopts.socketPath, argv);
        if (!got.ok) {
          failures[i] = got.error;
        } else if (got.job.exitCode != want.exitCode || got.job.out != want.out ||
                   got.job.err != want.err) {
          failures[i] = "served response diverged from local for " + argv[0];
        }
      });
    for (auto& t : clients) t.join();
    for (uint32_t i = 0; i < requests; ++i)
      EXPECT_TRUE(failures[i].empty()) << "width " << width << " job " << i << ": "
                                       << failures[i];
    server.stop();
    EXPECT_EQ(server.requestsServed(), requests);
    // The resident tier actually engaged: repeats of the same program hit.
    EXPECT_GT(server.residentCache().hits() + server.residentCache().misses(), 0u);
  }
}

TEST(ServiceDaemon, MaxRequestsStopsAcceptLoop) {
  svc::ServerOptions sopts;
  sopts.socketPath = freshSocket("maxreq");
  sopts.maxRequests = 2;
  svc::Server server(sopts);
  ASSERT_TRUE(server.start()) << server.lastError();
  for (int i = 0; i < 2; ++i) {
    svc::ClientResult r = svc::runRemote(sopts.socketPath, {"--help"});
    ASSERT_TRUE(r.ok) << r.error;
  }
  EXPECT_EQ(server.wait(), 2u);
  server.stop();
}

}  // namespace
}  // namespace cb
