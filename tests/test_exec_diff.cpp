// Differential tests for the bytecode execution engine (src/runtime/exec.cpp)
// against the tree-walking reference interpreter (RunOptions::referenceInterp).
//
// Every program — the bundled corpus plus seeded randomly generated modules —
// is executed three ways: reference, bytecode sequential (replayThreads = 1)
// and bytecode with parallel worker-stream replay (replayThreads = 4). All
// three must agree on EVERYTHING the runtime reports: a bit-identical RunLog
// (samples, spawn records, alloc sites, threshold, streams, total cycles),
// the writeln output, the executed-instruction count, per-function cycle
// totals, and the success flag / error message.
//
// Suite naming feeds the CTest labels (tests/CMakeLists.txt): Property*.*
// carries the `property` label.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sampling/sample.h"
#include "support/rng.h"
#include "test_util.h"

namespace cb {
namespace {

struct ModeResult {
  const char* mode;
  rt::RunResult r;
};

/// Runs a compiled module under all three engine modes with shared options.
std::vector<ModeResult> runAllModes(const ir::Module& m, rt::RunOptions base) {
  std::vector<ModeResult> out;
  {
    rt::RunOptions o = base;
    o.referenceInterp = true;
    out.push_back({"reference", rt::execute(m, o)});
  }
  {
    rt::RunOptions o = base;
    o.referenceInterp = false;
    o.replayThreads = 1;  // bytecode engine, fully sequential
    out.push_back({"bytecode-seq", rt::execute(m, o)});
  }
  {
    rt::RunOptions o = base;
    o.referenceInterp = false;
    o.replayThreads = 4;  // parallel replay wherever regions are eligible
    out.push_back({"bytecode-par4", rt::execute(m, o)});
  }
  return out;
}

void expectAllModesAgree(const ir::Module& m, rt::RunOptions base,
                         const std::string& what) {
  std::vector<ModeResult> rs = runAllModes(m, base);
  const rt::RunResult& ref = rs[0].r;
  for (size_t i = 1; i < rs.size(); ++i) {
    const rt::RunResult& r = rs[i].r;
    SCOPED_TRACE(what + " [" + rs[i].mode + " vs reference]");
    EXPECT_EQ(r.ok, ref.ok);
    EXPECT_EQ(r.error, ref.error);
    EXPECT_TRUE(sampling::identical(ref.log, r.log))
        << sampling::firstDifference(ref.log, r.log);
    EXPECT_EQ(r.totalCycles, ref.totalCycles);
    EXPECT_EQ(r.instructionsExecuted, ref.instructionsExecuted);
    EXPECT_EQ(r.output, ref.output);
    EXPECT_EQ(r.cyclesPerFunction, ref.cyclesPerFunction);
  }
}

void expectSourceAgrees(const std::string& src, rt::RunOptions base,
                        const std::string& what) {
  auto c = fe::Compilation::fromString("diff.chpl", src, {});
  ASSERT_TRUE(c->ok()) << what << "\n" << c->diags().renderAll() << src;
  expectAllModesAgree(c->module(), base, what);
}

// ---------------------------------------------------------------------------
// Corpus equivalence: every bundled program, sampling on, plus a skidded
// variant (skid exercises the deferred-sample queue in both engines).
// ---------------------------------------------------------------------------

class PropertyExecDiffCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(PropertyExecDiffCorpus, AllEnginesBitIdentical) {
  auto c = fe::Compilation::fromFile(assetProgram(GetParam()), {});
  ASSERT_TRUE(c->ok()) << c->diags().renderAll();
  rt::RunOptions base;  // default threshold 9973, 12 workers, idle sampling
  expectAllModesAgree(c->module(), base, GetParam());
}

TEST_P(PropertyExecDiffCorpus, SkiddedSamplingBitIdentical) {
  auto c = fe::Compilation::fromFile(assetProgram(GetParam()), {});
  ASSERT_TRUE(c->ok()) << c->diags().renderAll();
  rt::RunOptions base;
  base.sampleThreshold = 997;
  base.skidInstructions = 3;
  expectAllModesAgree(c->module(), base, std::string(GetParam()) + " skid=3");
}

INSTANTIATE_TEST_SUITE_P(Programs, PropertyExecDiffCorpus,
                         ::testing::Values("example", "clomp", "clomp_opt",
                                           "minimd", "minimd_opt", "lulesh"));

// ---------------------------------------------------------------------------
// The parallel path must actually engage on an eligible program; silently
// falling back everywhere would make the equivalence above vacuous.
// ---------------------------------------------------------------------------

TEST(PropertyExecParallel, EligibleRegionsReplayOnThreads) {
  auto c = fe::Compilation::fromFile(assetProgram("lulesh"), {});
  ASSERT_TRUE(c->ok());
  rt::RunOptions o;
  o.replayThreads = 4;
  rt::RunResult r = rt::execute(c->module(), o);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.parallelRegionsReplayed, 0u)
      << "lulesh foralls should be provably independent";
  // Sequential modes never touch the pool.
  o.replayThreads = 1;
  EXPECT_EQ(rt::execute(c->module(), o).parallelRegionsReplayed, 0u);
  o.referenceInterp = true;
  o.replayThreads = 4;
  EXPECT_EQ(rt::execute(c->module(), o).parallelRegionsReplayed, 0u);
}

TEST(PropertyExecParallel, RacyScatterFallsBackAndMatches) {
  // fx[c] += ... with a gathered (data-dependent) index is NOT provably
  // independent: the engine must refuse to parallelize yet still match.
  const std::string src = R"(
    const D = {0..#64};
    var a: [D] real;
    var idx: [D] int;
    proc main() {
      forall i in D { idx[i] = (i * 7) % 64; }
      forall i in D { a[idx[i]] = a[idx[i]] + 1.0; }
      var s = 0.0;
      for i in D { s = s + a[i]; }
      writeln("sum:", s);
    }
  )";
  auto c = fe::Compilation::fromString("scatter.chpl", src, {});
  ASSERT_TRUE(c->ok()) << c->diags().renderAll();
  rt::RunOptions o;
  o.replayThreads = 4;
  rt::RunResult r = rt::execute(c->module(), o);
  ASSERT_TRUE(r.ok) << r.error;
  expectAllModesAgree(c->module(), o, "racy scatter");
}

// ---------------------------------------------------------------------------
// Runtime errors must carry the same message, the same partial RunLog and
// the same cycle/instruction totals in all modes — including errors raised
// inside a region that the parallel engine replays on threads.
// ---------------------------------------------------------------------------

TEST(PropertyExecErrors, OutOfBoundsInsideParallelRegion) {
  const std::string src = R"(
    const D = {0..#40};
    var a: [D] real;
    proc main() {
      forall i in D { a[i + 30] = 1.0; }
      writeln("unreachable");
    }
  )";
  rt::RunOptions base;
  expectSourceAgrees(src, base, "oob in forall");
}

TEST(PropertyExecErrors, DivisionByZeroInsideTask) {
  const std::string src = R"(
    const D = {0..#24};
    var a: [D] int;
    proc main() {
      forall i in D { a[i] = 100 / (i - 7); }
    }
  )";
  rt::RunOptions base;
  expectSourceAgrees(src, base, "div by zero in forall");
}

TEST(PropertyExecErrors, InstructionBudgetExhaustion) {
  const std::string src = R"(
    proc main() {
      var s = 0;
      for i in 0..#100000 { s = s + i; }
      writeln(s);
    }
  )";
  rt::RunOptions base;
  base.maxInstructions = 5000;  // trips mid-loop, outside any spawn
  expectSourceAgrees(src, base, "budget exhaustion");
}

// ---------------------------------------------------------------------------
// Seeded random modules. The generator composes independent feature blocks —
// disjoint-write foralls, gathers, reductions through captured scalars
// (ineligible), RNG calls (ineligible), records, 2D domains, coforalls,
// nested spawns, writeln in tasks — with seed-derived sizes and constants,
// then the whole program must agree across engines under several sampling
// configurations.
// ---------------------------------------------------------------------------

std::string randomProgram(uint64_t seed) {
  Rng rng(seed);
  auto pick = [&](uint32_t n) { return rng.nextBounded(n); };
  uint32_t n = 16 + pick(48);          // array extent
  uint32_t rows = 3 + pick(5), cols = 3 + pick(5);
  std::string s;
  s += "config const scale = " + std::to_string(1 + pick(7)) + ";\n";
  s += "const D = {0..#" + std::to_string(n) + "};\n";
  s += "const G = {0..#" + std::to_string(rows) + ", 0..#" + std::to_string(cols) + "};\n";
  s += "var a: [D] real;\nvar b: [D] real;\nvar c: [D] int;\nvar grid: [G] real;\n";
  s += "record Pt { var px: real; var py: real; }\n";
  s += "var pts: [D] Pt;\n";

  s += "proc initAll() {\n";
  s += "  forall i in D {\n";
  s += "    a[i] = i * 1.5 + " + std::to_string(pick(9)) + ".25;\n";
  s += "    b[i] = 0.0;\n";
  s += "    c[i] = (i * " + std::to_string(1 + pick(5)) + ") % " + std::to_string(n) + ";\n";
  s += "  }\n";
  s += "  forall (r, cc) in G { grid[r, cc] = r * 10.0 + cc; }\n";
  s += "}\n";

  // Eligible: disjoint writes, affine offsets, reads of other arrays.
  s += "proc stencil() {\n";
  s += "  forall i in D {\n";
  s += "    b[i] = a[i] * scale + " + std::to_string(pick(4)) + ".5;\n";
  s += "    pts[i].px = b[i];\n";
  s += "    pts[i].py = a[i] - b[i];\n";
  s += "  }\n";
  s += "}\n";

  // Ineligible: gather through a data-dependent index.
  s += "proc gather() {\n";
  s += "  forall i in D { b[i] = b[i] + a[c[i]]; }\n";
  s += "}\n";

  // Ineligible: reduction through a captured scalar (store via ref capture
  // forces the sequential fallback; the deterministic scheduler makes the
  // serial forall reduction well-defined in every engine).
  s += "proc reduceAll(): real {\n";
  s += "  var total = 0.0;\n";
  s += "  forall i in D { total = total + b[i] + pts[i].px; }\n";
  s += "  return total;\n";
  s += "}\n";

  // Coforall block, per-index tasks.
  uint32_t tasks = 2 + pick(5);
  s += "proc spray() {\n";
  s += "  coforall t in 0..#" + std::to_string(tasks) + " {\n";
  s += "    grid[t % " + std::to_string(rows) + ", t % " + std::to_string(cols) + "] = t * 2.0;\n";
  s += "  }\n";
  s += "}\n";

  // Possibly an RNG-using loop (always ineligible) and task-side writeln.
  bool useRng = pick(2) == 0;
  bool taskPrint = pick(2) == 0;
  s += "proc noise() {\n";
  if (useRng) s += "  forall i in D { a[i] = a[i] + random() * 0.001; }\n";
  if (taskPrint) s += "  forall i in 0..#3 { writeln(\"t\", i); }\n";
  s += "  a[0] = a[0] + 1.0;\n";
  s += "}\n";

  // Nested spawn: outer forall calls nothing, inner loops only (the outer
  // region has calls, so it must fall back; inner spawns run inline).
  s += "proc nested() {\n";
  s += "  forall i in 0..#4 {\n";
  s += "    forall j in D { b[j] = b[j] + 0.125; }\n";
  s += "  }\n";
  s += "}\n";

  uint32_t steps = 1 + pick(3);
  s += "proc main() {\n";
  s += "  initAll();\n";
  s += "  for step in 0..#" + std::to_string(steps) + " {\n";
  s += "    stencil();\n    gather();\n    spray();\n    noise();\n";
  s += "  }\n";
  s += "  nested();\n";
  s += "  var gsum = 0.0;\n";
  s += "  for (r, cc) in G { gsum = gsum + grid[r, cc]; }\n";
  s += "  writeln(\"sum:\", reduceAll(), \" grid:\", gsum);\n";
  s += "}\n";
  return s;
}

class PropertyExecDiffRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertyExecDiffRandom, GeneratedModuleBitIdentical) {
  std::string src = randomProgram(GetParam());
  rt::RunOptions base;
  expectSourceAgrees(src, base, "seed " + std::to_string(GetParam()));
}

TEST_P(PropertyExecDiffRandom, GeneratedModuleLowThresholdFewWorkers) {
  std::string src = randomProgram(GetParam() ^ 0x9e3779b97f4a7c15ull);
  rt::RunOptions base;
  base.sampleThreshold = 211;
  base.numWorkers = 3;
  expectSourceAgrees(src, base, "seed' " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyExecDiffRandom,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace cb
