// Differential tests for the bytecode execution engine (src/runtime/exec.cpp)
// against the tree-walking reference interpreter (RunOptions::referenceInterp).
//
// Every program — the bundled corpus plus seeded randomly generated modules —
// is executed three ways: reference, bytecode sequential (replayThreads = 1)
// and bytecode with parallel worker-stream replay (replayThreads = 4). All
// three must agree on EVERYTHING the runtime reports: a bit-identical RunLog
// (samples, spawn records, alloc sites, threshold, streams, total cycles),
// the writeln output, the executed-instruction count, per-function cycle
// totals, and the success flag / error message.
//
// Suite naming feeds the CTest labels (tests/CMakeLists.txt): Property*.*
// carries the `property` label.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "sampling/sample.h"
#include "support/rng.h"
#include "test_util.h"

namespace cb {
namespace {

struct ModeResult {
  const char* mode;
  rt::RunResult r;
};

/// Runs a compiled module under all three engine modes with shared options.
std::vector<ModeResult> runAllModes(const ir::Module& m, rt::RunOptions base) {
  std::vector<ModeResult> out;
  {
    rt::RunOptions o = base;
    o.referenceInterp = true;
    out.push_back({"reference", rt::execute(m, o)});
  }
  {
    rt::RunOptions o = base;
    o.referenceInterp = false;
    o.replayThreads = 1;  // bytecode engine, fully sequential
    out.push_back({"bytecode-seq", rt::execute(m, o)});
  }
  {
    rt::RunOptions o = base;
    o.referenceInterp = false;
    o.replayThreads = 4;  // parallel replay wherever regions are eligible
    out.push_back({"bytecode-par4", rt::execute(m, o)});
  }
  return out;
}

void expectAllModesAgree(const ir::Module& m, rt::RunOptions base,
                         const std::string& what) {
  std::vector<ModeResult> rs = runAllModes(m, base);
  const rt::RunResult& ref = rs[0].r;
  for (size_t i = 1; i < rs.size(); ++i) {
    const rt::RunResult& r = rs[i].r;
    SCOPED_TRACE(what + " [" + rs[i].mode + " vs reference]");
    EXPECT_EQ(r.ok, ref.ok);
    EXPECT_EQ(r.error, ref.error);
    EXPECT_TRUE(sampling::identical(ref.log, r.log))
        << sampling::firstDifference(ref.log, r.log);
    EXPECT_EQ(r.totalCycles, ref.totalCycles);
    EXPECT_EQ(r.instructionsExecuted, ref.instructionsExecuted);
    EXPECT_EQ(r.output, ref.output);
    EXPECT_EQ(r.cyclesPerFunction, ref.cyclesPerFunction);
  }
}

void expectSourceAgrees(const std::string& src, rt::RunOptions base,
                        const std::string& what) {
  auto c = fe::Compilation::fromString("diff.chpl", src, {});
  ASSERT_TRUE(c->ok()) << what << "\n" << c->diags().renderAll() << src;
  expectAllModesAgree(c->module(), base, what);
}

// ---------------------------------------------------------------------------
// Corpus equivalence: every bundled program, sampling on, plus a skidded
// variant (skid exercises the deferred-sample queue in both engines).
// ---------------------------------------------------------------------------

class PropertyExecDiffCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(PropertyExecDiffCorpus, AllEnginesBitIdentical) {
  auto c = fe::Compilation::fromFile(assetProgram(GetParam()), {});
  ASSERT_TRUE(c->ok()) << c->diags().renderAll();
  rt::RunOptions base;  // default threshold 9973, 12 workers, idle sampling
  expectAllModesAgree(c->module(), base, GetParam());
}

TEST_P(PropertyExecDiffCorpus, SkiddedSamplingBitIdentical) {
  auto c = fe::Compilation::fromFile(assetProgram(GetParam()), {});
  ASSERT_TRUE(c->ok()) << c->diags().renderAll();
  rt::RunOptions base;
  base.sampleThreshold = 997;
  base.skidInstructions = 3;
  expectAllModesAgree(c->module(), base, std::string(GetParam()) + " skid=3");
}

INSTANTIATE_TEST_SUITE_P(Programs, PropertyExecDiffCorpus,
                         ::testing::Values("example", "clomp", "clomp_opt",
                                           "minimd", "minimd_opt", "lulesh"));

// ---------------------------------------------------------------------------
// The parallel path must actually engage on an eligible program; silently
// falling back everywhere would make the equivalence above vacuous.
// ---------------------------------------------------------------------------

TEST(PropertyExecParallel, EligibleRegionsReplayOnThreads) {
  auto c = fe::Compilation::fromFile(assetProgram("lulesh"), {});
  ASSERT_TRUE(c->ok());
  rt::RunOptions o;
  o.replayThreads = 4;
  rt::RunResult r = rt::execute(c->module(), o);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.parallelRegionsReplayed, 0u)
      << "lulesh foralls should be provably independent";
  // Sequential modes never touch the pool.
  o.replayThreads = 1;
  EXPECT_EQ(rt::execute(c->module(), o).parallelRegionsReplayed, 0u);
  o.referenceInterp = true;
  o.replayThreads = 4;
  EXPECT_EQ(rt::execute(c->module(), o).parallelRegionsReplayed, 0u);
}

TEST(PropertyExecParallel, RacyScatterFallsBackAndMatches) {
  // fx[c] += ... with a gathered (data-dependent) index is NOT provably
  // independent: the engine must refuse to parallelize yet still match.
  const std::string src = R"(
    const D = {0..#64};
    var a: [D] real;
    var idx: [D] int;
    proc main() {
      forall i in D { idx[i] = (i * 7) % 64; }
      forall i in D { a[idx[i]] = a[idx[i]] + 1.0; }
      var s = 0.0;
      for i in D { s = s + a[i]; }
      writeln("sum:", s);
    }
  )";
  auto c = fe::Compilation::fromString("scatter.chpl", src, {});
  ASSERT_TRUE(c->ok()) << c->diags().renderAll();
  rt::RunOptions o;
  o.replayThreads = 4;
  rt::RunResult r = rt::execute(c->module(), o);
  ASSERT_TRUE(r.ok) << r.error;
  expectAllModesAgree(c->module(), o, "racy scatter");
}

// ---------------------------------------------------------------------------
// Runtime errors must carry the same message, the same partial RunLog and
// the same cycle/instruction totals in all modes — including errors raised
// inside a region that the parallel engine replays on threads.
// ---------------------------------------------------------------------------

TEST(PropertyExecErrors, OutOfBoundsInsideParallelRegion) {
  const std::string src = R"(
    const D = {0..#40};
    var a: [D] real;
    proc main() {
      forall i in D { a[i + 30] = 1.0; }
      writeln("unreachable");
    }
  )";
  rt::RunOptions base;
  expectSourceAgrees(src, base, "oob in forall");
}

TEST(PropertyExecErrors, DivisionByZeroInsideTask) {
  const std::string src = R"(
    const D = {0..#24};
    var a: [D] int;
    proc main() {
      forall i in D { a[i] = 100 / (i - 7); }
    }
  )";
  rt::RunOptions base;
  expectSourceAgrees(src, base, "div by zero in forall");
}

TEST(PropertyExecErrors, InstructionBudgetExhaustion) {
  const std::string src = R"(
    proc main() {
      var s = 0;
      for i in 0..#100000 { s = s + i; }
      writeln(s);
    }
  )";
  rt::RunOptions base;
  base.maxInstructions = 5000;  // trips mid-loop, outside any spawn
  expectSourceAgrees(src, base, "budget exhaustion");
}

// ---------------------------------------------------------------------------
// Seeded random modules. The generator composes independent feature blocks —
// disjoint-write foralls, gathers, reductions through captured scalars
// (ineligible), RNG calls (ineligible), records, 2D domains, coforalls,
// nested spawns, writeln in tasks — with seed-derived sizes and constants,
// then the whole program must agree across engines under several sampling
// configurations.
// ---------------------------------------------------------------------------

std::string randomProgram(uint64_t seed) {
  Rng rng(seed);
  auto pick = [&](uint32_t n) { return rng.nextBounded(n); };
  uint32_t n = 16 + pick(48);          // array extent
  uint32_t rows = 3 + pick(5), cols = 3 + pick(5);
  std::string s;
  s += "config const scale = " + std::to_string(1 + pick(7)) + ";\n";
  s += "const D = {0..#" + std::to_string(n) + "};\n";
  s += "const G = {0..#" + std::to_string(rows) + ", 0..#" + std::to_string(cols) + "};\n";
  s += "var a: [D] real;\nvar b: [D] real;\nvar c: [D] int;\nvar grid: [G] real;\n";
  s += "record Pt { var px: real; var py: real; }\n";
  s += "var pts: [D] Pt;\n";

  s += "proc initAll() {\n";
  s += "  forall i in D {\n";
  s += "    a[i] = i * 1.5 + " + std::to_string(pick(9)) + ".25;\n";
  s += "    b[i] = 0.0;\n";
  s += "    c[i] = (i * " + std::to_string(1 + pick(5)) + ") % " + std::to_string(n) + ";\n";
  s += "  }\n";
  s += "  forall (r, cc) in G { grid[r, cc] = r * 10.0 + cc; }\n";
  s += "}\n";

  // Eligible: disjoint writes, affine offsets, reads of other arrays.
  s += "proc stencil() {\n";
  s += "  forall i in D {\n";
  s += "    b[i] = a[i] * scale + " + std::to_string(pick(4)) + ".5;\n";
  s += "    pts[i].px = b[i];\n";
  s += "    pts[i].py = a[i] - b[i];\n";
  s += "  }\n";
  s += "}\n";

  // Ineligible: gather through a data-dependent index.
  s += "proc gather() {\n";
  s += "  forall i in D { b[i] = b[i] + a[c[i]]; }\n";
  s += "}\n";

  // Ineligible: reduction through a captured scalar (store via ref capture
  // forces the sequential fallback; the deterministic scheduler makes the
  // serial forall reduction well-defined in every engine).
  s += "proc reduceAll(): real {\n";
  s += "  var total = 0.0;\n";
  s += "  forall i in D { total = total + b[i] + pts[i].px; }\n";
  s += "  return total;\n";
  s += "}\n";

  // Coforall block, per-index tasks.
  uint32_t tasks = 2 + pick(5);
  s += "proc spray() {\n";
  s += "  coforall t in 0..#" + std::to_string(tasks) + " {\n";
  s += "    grid[t % " + std::to_string(rows) + ", t % " + std::to_string(cols) + "] = t * 2.0;\n";
  s += "  }\n";
  s += "}\n";

  // Possibly an RNG-using loop (always ineligible) and task-side writeln.
  bool useRng = pick(2) == 0;
  bool taskPrint = pick(2) == 0;
  s += "proc noise() {\n";
  if (useRng) s += "  forall i in D { a[i] = a[i] + random() * 0.001; }\n";
  if (taskPrint) s += "  forall i in 0..#3 { writeln(\"t\", i); }\n";
  s += "  a[0] = a[0] + 1.0;\n";
  s += "}\n";

  // Nested spawn: outer forall calls nothing, inner loops only (the outer
  // region has calls, so it must fall back; inner spawns run inline).
  s += "proc nested() {\n";
  s += "  forall i in 0..#4 {\n";
  s += "    forall j in D { b[j] = b[j] + 0.125; }\n";
  s += "  }\n";
  s += "}\n";

  uint32_t steps = 1 + pick(3);
  s += "proc main() {\n";
  s += "  initAll();\n";
  s += "  for step in 0..#" + std::to_string(steps) + " {\n";
  s += "    stencil();\n    gather();\n    spray();\n    noise();\n";
  s += "  }\n";
  s += "  nested();\n";
  s += "  var gsum = 0.0;\n";
  s += "  for (r, cc) in G { gsum = gsum + grid[r, cc]; }\n";
  s += "  writeln(\"sum:\", reduceAll(), \" grid:\", gsum);\n";
  s += "}\n";
  return s;
}

class PropertyExecDiffRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertyExecDiffRandom, GeneratedModuleBitIdentical) {
  std::string src = randomProgram(GetParam());
  rt::RunOptions base;
  expectSourceAgrees(src, base, "seed " + std::to_string(GetParam()));
}

TEST_P(PropertyExecDiffRandom, GeneratedModuleLowThresholdFewWorkers) {
  std::string src = randomProgram(GetParam() ^ 0x9e3779b97f4a7c15ull);
  rt::RunOptions base;
  base.sampleThreshold = 211;
  base.numWorkers = 3;
  expectSourceAgrees(src, base, "seed' " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyExecDiffRandom,
                         ::testing::Range<uint64_t>(0, 12));

// ---------------------------------------------------------------------------
// Aggregator differential wall: random PGAS gather/scatter programs emitted
// in twin naive/aggregated variants. Each variant runs under {reference
// interp, bytecode ×1/2/4 replay threads} × {1, 2, 4, 8 locales}: all four
// engine modes must produce bit-identical RunLogs, and the aggregated twin
// must land on exactly the final state (checksum) of the naive one — the
// optimization may rebatch the traffic, never change the answer.
// ---------------------------------------------------------------------------

/// Twin generator: same seed -> same tables, same rotated indices, same
/// rounds; `useAgg` only switches the copy statements between plain
/// assignments and Src/DstAggregator `with`-intent copies. Rotation shifts
/// are window permutations, so scatters write each index at most once and
/// the two variants are semantically identical.
std::string aggTwinProgram(uint64_t seed, bool useAgg) {
  Rng rng(seed);
  auto pick = [&](uint32_t n) { return static_cast<uint32_t>(rng.nextBounded(n)); };
  auto num = [](uint64_t v) { return std::to_string(v); };
  uint32_t n = 16 * (1 + pick(3));  // 16/32/48: divisible by every locale count
  uint32_t rounds = 1 + pick(3);
  const char* distA = pick(2) ? " dmapped Block" : " dmapped Cyclic";
  const char* distB = pick(2) ? " dmapped Block" : " dmapped Cyclic";
  uint32_t mulA = 1 + pick(6), mulB = 1 + pick(6);

  std::string s;
  s += "const DA = {0..#" + num(n) + "}" + distA + ";\n";
  s += "const DB = {0..#" + num(n) + "}" + distB + ";\n";
  s += "var A: [DA] int;\nvar B: [DB] int;\n";
  s += "var gA: [{0..#" + num(n) + "}] int;\nvar gB: [{0..#" + num(n) + "}] int;\n";

  // Owner-order init: every write stays on the owning locale.
  s += "proc init0() {\n";
  s += "  const chunk = " + num(n) + " / numLocales;\n";
  s += "  for l in 0..#numLocales {\n";
  s += "    on Locales[l] {\n";
  s += "      const lo = l * chunk;\n";
  s += "      for k in lo..#chunk { gA[k] = 0; gB[k] = 0; }\n";
  s += "      for k in lo..#chunk { A[k] = k * " + num(mulA) + " + 1; }\n";
  s += "      for m in 0..#chunk { B[m * numLocales + l] = m * " + num(mulB) + " + 2; }\n";
  s += "    }\n";
  s += "  }\n";
  s += "}\n";

  auto gatherStmt = [&](const char* dst, const char* src) {
    return useAgg ? std::string("      ga.copy(") + dst + ", " + src + ");\n"
                  : std::string("      ") + dst + " = " + src + ";\n";
  };
  auto scatterStmt = [&](const char* dst, const std::string& val) {
    return useAgg ? std::string("      da.copy(") + dst + ", " + val + ")" + ";\n"
                  : std::string("      ") + dst + " = " + val + ";\n";
  };
  const char* gaIntent = useAgg ? " with (var ga = new SrcAggregator(int))" : "";
  const char* daIntent = useAgg ? " with (var da = new DstAggregator(int))" : "";

  s += "proc gather(lo: int, hi: int, chunk: int, shift: int) {\n";
  s += std::string("  forall k in lo..hi") + gaIntent + " {\n";
  s += "      var t = k + shift;\n";
  s += "      if t > hi then t = t - chunk;\n";
  s += gatherStmt("gA[k]", "A[t]");
  s += "  }\n";
  s += std::string("  forall k in lo..hi") + gaIntent + " {\n";
  s += "      var t = k + shift;\n";
  s += "      if t > hi then t = t - chunk;\n";
  s += gatherStmt("gB[k]", "B[t]");
  s += "  }\n";
  s += "}\n";

  s += "proc scatter(lo: int, hi: int, chunk: int, shift: int, round: int) {\n";
  s += std::string("  forall k in lo..hi") + daIntent + " {\n";
  s += "      var t = k + shift;\n";
  s += "      if t > hi then t = t - chunk;\n";
  s += scatterStmt("A[t]", "gB[k] + round");
  s += "  }\n";
  s += std::string("  forall k in lo..hi") + daIntent + " {\n";
  s += "      var t = k + shift;\n";
  s += "      if t > hi then t = t - chunk;\n";
  s += scatterStmt("B[t]", "gA[k] + round");
  s += "  }\n";
  s += "}\n";

  uint32_t sh1 = 1 + pick(5), sh2 = 1 + pick(5);
  s += "proc main() {\n";
  s += "  init0();\n";
  s += "  const chunk = " + num(n) + " / numLocales;\n";
  s += "  for round in 0..#" + num(rounds) + " {\n";
  s += "    for l in 0..#numLocales {\n";
  s += "      on Locales[l] {\n";
  s += "        const lo = l * chunk;\n";
  s += "        const hi = lo + chunk - 1;\n";
  s += "        gather(lo, hi, chunk, (round * " + num(sh1) + " + 1) % chunk);\n";
  s += "        scatter(lo, hi, chunk, (round * " + num(sh2) + " + 2) % chunk, round);\n";
  s += "      }\n";
  s += "    }\n";
  s += "  }\n";
  s += "  var chk = 0;\n";
  s += "  for l in 0..#numLocales {\n";
  s += "    on Locales[l] {\n";
  s += "      const lo = l * chunk;\n";
  s += "      for k in lo..#chunk { chk = chk + A[k] + gA[k] + gB[k]; }\n";
  s += "      for m in 0..#chunk { chk = chk + B[m * numLocales + l]; }\n";
  s += "    }\n";
  s += "  }\n";
  s += "  writeln(\"chk:\", chk);\n";
  s += "}\n";
  return s;
}

/// Like runAllModes but with the full replay-thread ladder (1/2/4).
void expectAggModesAgree(const ir::Module& m, rt::RunOptions base, const std::string& what,
                         std::string* outChecksum) {
  rt::RunOptions ref = base;
  ref.referenceInterp = true;
  rt::RunResult rr = rt::execute(m, ref);
  ASSERT_TRUE(rr.ok) << what << ": " << rr.error;
  for (uint32_t threads : {1u, 2u, 4u}) {
    rt::RunOptions o = base;
    o.referenceInterp = false;
    o.replayThreads = threads;
    rt::RunResult rb = rt::execute(m, o);
    SCOPED_TRACE(what + " [bytecode x" + std::to_string(threads) + "]");
    ASSERT_EQ(rb.ok, rr.ok) << rb.error;
    EXPECT_TRUE(sampling::identical(rr.log, rb.log))
        << sampling::firstDifference(rr.log, rb.log);
    EXPECT_EQ(rb.output, rr.output);
    EXPECT_EQ(rb.totalCycles, rr.totalCycles);
    EXPECT_EQ(rb.instructionsExecuted, rr.instructionsExecuted);
  }
  if (outChecksum) *outChecksum = rr.output;
}

class PropertyAggDiff : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertyAggDiff, TwinsAgreeAcrossEnginesThreadsAndLocales) {
  bool anyAggregated = false;  // the shard must exercise real buffered traffic
  for (uint64_t k = 0; k < 3; ++k) {
    uint64_t seed = GetParam() * 3 + k;
    std::string naiveSrc = aggTwinProgram(seed, /*useAgg=*/false);
    std::string aggSrc = aggTwinProgram(seed, /*useAgg=*/true);
    auto cn = fe::Compilation::fromString("naive.chpl", naiveSrc, {});
    auto ca = fe::Compilation::fromString("agg.chpl", aggSrc, {});
    ASSERT_TRUE(cn->ok()) << cn->diags().renderAll() << naiveSrc;
    ASSERT_TRUE(ca->ok()) << ca->diags().renderAll() << aggSrc;
    for (uint32_t locales : {1u, 2u, 4u, 8u}) {
      rt::RunOptions base;
      base.sampleThreshold = 997;
      base.numLocales = locales;
      base.localeId = locales / 2;  // a non-zero rank wherever one exists
      std::string what = "seed " + std::to_string(seed) + " locales " +
                         std::to_string(locales);
      std::string naiveChk, aggChk;
      expectAggModesAgree(cn->module(), base, what + " naive", &naiveChk);
      expectAggModesAgree(ca->module(), base, what + " agg", &aggChk);
      // The aggregated twin computes the identical final state.
      EXPECT_EQ(aggChk, naiveChk) << what << "\n" << aggSrc;
      // And conserves the traffic: every kernel element the naive twin moves
      // with a bare GET/PUT moves through a buffer instead — never twice,
      // never not at all. (Init and checksum code is shared and un-
      // aggregated, so its remote accesses stay naive in both twins.)
      rt::RunOptions probe = base;
      rt::RunResult rn = rt::execute(cn->module(), probe);
      rt::RunResult ra = rt::execute(ca->module(), probe);
      ASSERT_TRUE(rn.ok && ra.ok) << what;
      EXPECT_EQ(ra.log.commAggGets + ra.log.commGets, rn.log.commGets) << what;
      EXPECT_EQ(ra.log.commAggPuts + ra.log.commPuts, rn.log.commPuts) << what;
      EXPECT_EQ(rn.log.commAggGets, 0u) << what;
      EXPECT_EQ(rn.log.commAggPuts, 0u) << what;
      EXPECT_EQ(ra.log.commMatrix, rn.log.commMatrix) << what;
      if (locales > 1) anyAggregated |= ra.log.commAggGets + ra.log.commAggPuts > 0;
    }
  }
  EXPECT_TRUE(anyAggregated) << "no generated program produced aggregated traffic";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyAggDiff, ::testing::Range<uint64_t>(0, 6));

// ---------------------------------------------------------------------------
// Bandwidth-ceiling cost profile: the token-bucket and contention charges
// must be bit-identical across engines and replay widths (the stall
// counters are part of sampling::identical), and the new counters must
// actually fire where the model says they should.
// ---------------------------------------------------------------------------

class PropertyBandwidthDiff : public ::testing::TestWithParam<const char*> {};

TEST_P(PropertyBandwidthDiff, CeilingProfileBitIdentical) {
  auto c = fe::Compilation::fromFile(assetProgram(GetParam()), {});
  ASSERT_TRUE(c->ok()) << c->diags().renderAll();
  for (bool fastProfile : {false, true}) {
    rt::RunOptions base;
    base.costProfileOverride = rt::CostProfile::bandwidthCeiling(fastProfile);
    base.numLocales = 4;
    base.localeId = 1;
    base.configOverrides["hereId"] = "1";
    expectAllModesAgree(c->module(), base,
                        std::string(GetParam()) + (fastProfile ? " [fast]" : " [std]"));
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, PropertyBandwidthDiff,
                         ::testing::Values("ig_naive", "ig_agg", "minimd_badloc",
                                           "weakscale", "clomp"));

rt::RunResult runCeiling(const char* program, bool ceiling, uint32_t workers,
                         std::map<std::string, std::string> configs = {}) {
  auto c = fe::Compilation::fromFile(assetProgram(program), {});
  EXPECT_TRUE(c->ok()) << c->diags().renderAll();
  rt::RunOptions o;
  if (ceiling) o.costProfileOverride = rt::CostProfile::bandwidthCeiling(false);
  o.numLocales = 4;
  o.localeId = 1;
  o.numWorkers = workers;
  o.configOverrides["hereId"] = "1";
  for (auto& [k, v] : configs) o.configOverrides[k] = v;
  rt::RunResult r = rt::execute(c->module(), o);
  EXPECT_TRUE(r.ok) << program << ": " << r.error;
  return r;
}

TEST(PropertyBandwidthCounters, DefaultProfileChargesNothing) {
  // Without the ceiling all three stall counters stay zero — the model is
  // strictly opt-in, so default profiles are bit-identical to the seed.
  for (const char* program : {"ig_naive", "ig_agg", "weakscale"}) {
    rt::RunResult r = runCeiling(program, /*ceiling=*/false, 1);
    EXPECT_EQ(r.log.commNetStallCycles, 0u) << program;
    EXPECT_EQ(r.log.commMemStallCycles, 0u) << program;
    EXPECT_EQ(r.log.commContentionCycles, 0u) << program;
  }
}

TEST(PropertyBandwidthCounters, BulkFlushesAreBandwidthBound) {
  // Aggregated traffic is where the injection ceiling bites: an ig_agg
  // flush injects up to 64 elements x 8 bytes in one burst, far past what
  // the bucket earns during the flush latency, so net-stall cycles land on
  // the clock — the "bandwidth-bound" half of the comm-counter split — and
  // total time grows past the latency-only run. Bare one-element GETs
  // (ig_naive) stay latency-bound: each 600-cycle round trip earns the
  // bucket more than the 8 bytes the element costs.
  rt::RunResult plain = runCeiling("ig_agg", /*ceiling=*/false, 1);
  rt::RunResult ceil = runCeiling("ig_agg", /*ceiling=*/true, 1);
  EXPECT_GT(ceil.log.commNetStallCycles, 0u);
  EXPECT_GT(ceil.totalCycles, plain.totalCycles);
  // Same traffic, different price: the exact comm counts cannot move.
  EXPECT_EQ(ceil.log.commAggGets, plain.log.commAggGets);
  EXPECT_EQ(ceil.log.commAggPuts, plain.log.commAggPuts);
  EXPECT_EQ(ceil.log.commMatrix, plain.log.commMatrix);
  EXPECT_EQ(ceil.output, plain.output);
  rt::RunResult naive = runCeiling("ig_naive", /*ceiling=*/true, 1);
  EXPECT_EQ(naive.log.commNetStallCycles, 0u);
}

TEST(PropertyBandwidthCounters, SameOwnerStreamTripsContention) {
  // weakscale's exchange loop issues its remote GETs back to back against
  // ONE home locale (~600-cycle spacing, ~12 per 8192-cycle window, free
  // allowance 8), so the hot-spot charge fires. ig_naive's cyclic table
  // rotates the owning locale every element and must never trip it.
  rt::RunResult ring = runCeiling("weakscale", /*ceiling=*/true, 1);
  EXPECT_GT(ring.log.commContentionCycles, 0u);
  rt::RunResult rotating = runCeiling("ig_naive", /*ceiling=*/true, 1);
  EXPECT_EQ(rotating.log.commContentionCycles, 0u);
}

TEST(PropertyBandwidthCounters, MemStallFiresOnlyPastCacheResidency) {
  // clomp_opt's flat zone array at 256 parts x 256 zones is 512KB — past
  // memCacheResidentBytes, so its streaming accesses pay memory-bandwidth
  // stalls once 12 worker streams share the socket rate. The nested
  // original keeps every per-part array cache-resident and must not be
  // charged a single stall cycle.
  std::map<std::string, std::string> cfg = {{"CLOMP_numParts", "256"},
                                            {"CLOMP_zonesPerPart", "256"},
                                            {"CLOMP_timeScale", "1"}};
  rt::RunResult flat = runCeiling("clomp_opt", /*ceiling=*/true, 12, cfg);
  rt::RunResult nested = runCeiling("clomp", /*ceiling=*/true, 12, cfg);
  EXPECT_GT(flat.log.commMemStallCycles, 0u);
  EXPECT_EQ(nested.log.commMemStallCycles, 0u);
}

}  // namespace
}  // namespace cb
