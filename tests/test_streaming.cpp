// Tests of the streaming-ingestion layer: RunLogStreamer (the single
// decoder behind deserializeRunLog/loadRunLog), the two-pass meta+samples
// protocol, and the memory-bounded streaming post-mortem. The load-bearing
// properties are
//   (1) streaming acceptance == batch acceptance on every input, valid or
//       corrupt (single-decoder principle), and
//   (2) the streamed BlameReport is bit-identical to the batch
//       attribute(consolidate(log)) at EVERY chunk size, while peak
//       accumulator memory depends on distinct blame rows, not log length.
//
// Suite naming feeds the CTest labels: Property*.* carry the `property`
// label, the rest land in `unit`.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "postmortem/attribution.h"
#include "postmortem/instance.h"
#include "postmortem/streaming.h"
#include "sampling/log_io.h"
#include "sampling/log_stream.h"
#include "support/rng.h"
#include "test_util.h"

namespace cb {
namespace {

sampling::RunLog makeLog() {
  auto c = fe::Compilation::fromString(
      "t.chpl",
      "const D = {0..#64};\nvar A: [D] real;\nproc main() { forall i in D { var t = 0.0; for j "
      "in 0..#30 { t += i * j; } A[i] = t; } }");
  EXPECT_TRUE(c->ok());
  rt::RunOptions o;
  o.sampleThreshold = 101;
  rt::RunResult r = rt::execute(c->module(), o);
  EXPECT_TRUE(r.ok);
  return r.log;
}

std::string writeTemp(const std::string& name, const std::string& bytes) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

// ---------------------------------------------------------------------------
// RunLogStreamer: decoder equivalence
// ---------------------------------------------------------------------------

TEST(StreamingLog, ReadAllMatchesBatchOnBothFormats) {
  sampling::RunLog log = makeLog();
  for (std::string data :
       {sampling::serializeRunLog(log), sampling::serializeRunLogBinary(log)}) {
    sampling::RunLog batch, streamed;
    ASSERT_TRUE(sampling::deserializeRunLog(data, batch));
    sampling::RunLogStreamer s;
    s.openString(data);
    ASSERT_TRUE(s.readAll(streamed));
    // Re-serialization covers every persisted field.
    EXPECT_EQ(sampling::serializeRunLog(streamed), sampling::serializeRunLog(batch));
    EXPECT_EQ(s.sampleCount(), log.samples.size());
  }
}

TEST(StreamingLog, TwoPassProtocolReconstructsTheLog) {
  sampling::RunLog log = makeLog();
  std::string data = sampling::serializeRunLogBinary(log);
  sampling::RunLogStreamer s;
  s.openString(data);
  sampling::RunLog meta;
  ASSERT_TRUE(s.readMeta(meta));
  EXPECT_TRUE(meta.samples.empty());  // pass 1 collects everything BUT samples
  EXPECT_EQ(meta.spawns.size(), log.spawns.size());
  ASSERT_TRUE(s.forEachSample([&](sampling::RawSample&& smp) {
    meta.samples.push_back(std::move(smp));
    return true;
  }));
  EXPECT_EQ(sampling::serializeRunLog(meta), sampling::serializeRunLog(log));
}

TEST(StreamingLog, ForEachSampleAbortsOnFalse) {
  sampling::RunLog log = makeLog();
  ASSERT_GE(log.samples.size(), 3u);
  std::string data = sampling::serializeRunLogBinary(log);
  sampling::RunLogStreamer s;
  s.openString(data);
  sampling::RunLog meta;
  ASSERT_TRUE(s.readMeta(meta));
  uint64_t seen = 0;
  EXPECT_FALSE(s.forEachSample([&](sampling::RawSample&&) { return ++seen < 2; }));
  EXPECT_EQ(seen, 2u);
}

TEST(StreamingLog, FileDecodeWithMinimumChunkMatchesMemoryDecode) {
  sampling::RunLog log = makeLog();
  for (std::string data :
       {sampling::serializeRunLog(log), sampling::serializeRunLogBinary(log)}) {
    std::string path = writeTemp("cb_stream_chunks.cblog", data);
    sampling::RunLogStreamer file;
    // Request a 1-byte chunk: ChunkReader clamps to its floor, forcing many
    // refills + compactions on this multi-hundred-KiB log.
    ASSERT_TRUE(file.openFile(path, 1));
    sampling::RunLog viaFile, viaMem;
    ASSERT_TRUE(file.readAll(viaFile));
    EXPECT_GT(file.bufferBytes(), 0u);
    sampling::RunLogStreamer mem;
    mem.openString(data);
    ASSERT_TRUE(mem.readAll(viaMem));
    EXPECT_EQ(mem.bufferBytes(), 0u);  // zero-copy: no resident buffer
    EXPECT_EQ(sampling::serializeRunLog(viaFile), sampling::serializeRunLog(viaMem));
    std::remove(path.c_str());
  }
}

// Single-decoder principle, adversarial form: for random prefixes and random
// byte corruptions, the chunked FILE path and the in-memory path must agree
// on acceptance — and never crash. This extends the corruption fuzz of
// test_log_io.cpp to the new ChunkReader-backed loader.
TEST(PropertyStreamingFuzz, ChunkedFileAcceptanceEqualsMemoryAcceptance) {
  sampling::RunLog log = makeLog();
  std::string data = sampling::serializeRunLogBinary(log);
  Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = data;
    if (trial % 2 == 0) {
      mutated.resize(rng.next() % (data.size() + 1));  // truncation
    } else {
      for (int k = 0; k < 4; ++k)  // byte flips (magic/version kept)
        mutated[5 + rng.next() % (mutated.size() - 5)] ^=
            static_cast<char>(1 + rng.next() % 255);
    }
    sampling::RunLog a, b;
    bool memOk = sampling::deserializeRunLog(mutated, a);
    std::string path = writeTemp("cb_stream_fuzz.cblog", mutated);
    sampling::RunLogStreamer s;
    ASSERT_TRUE(s.openFile(path, 1));
    bool fileOk = s.readAll(b);
    EXPECT_EQ(fileOk, memOk) << "trial " << trial << " size " << mutated.size();
    if (memOk && fileOk)
      EXPECT_EQ(sampling::serializeRunLog(b), sampling::serializeRunLog(a));
    std::remove(path.c_str());
  }
}

TEST(StreamingLog, LoadRunLogRejectsTruncatedFiles) {
  sampling::RunLog log = makeLog();
  std::string data = sampling::serializeRunLogBinary(log);
  for (size_t cut : {data.size() - 1, data.size() / 2, size_t{7}}) {
    std::string path = writeTemp("cb_stream_trunc.cblog", data.substr(0, cut));
    sampling::RunLog out;
    EXPECT_FALSE(sampling::loadRunLog(path, out)) << "cut at " << cut;
    std::remove(path.c_str());
  }
}

// ---------------------------------------------------------------------------
// Streaming post-mortem: bit-identity + bounded memory
// ---------------------------------------------------------------------------

TEST(PropertyStreamingPostmortem, ChunkSizeInvariance) {
  ProfileOptions popts;
  popts.run.sampleThreshold = 101;  // dense sampling: the tiny program must yield samples
  Profiler p = test::profileSource(
      "const D = {0..#48};\nvar A: [D] real;\nvar B: [D] real;\nproc main() { forall i in D { "
      "var t = 0.0; for j in 0..#25 { t += i + j; } A[i] = t; B[i] = 2.0 * t; } }",
      popts);
  const ir::Module& m = p.compilation()->module();
  const sampling::RunLog& log = p.runResult()->log;
  ASSERT_FALSE(log.samples.empty());

  std::vector<pm::Instance> inst = pm::consolidate(m, log, {});
  pm::BlameReport batch = pm::attribute(*p.moduleBlame(), inst, {});

  std::string data = sampling::serializeRunLogBinary(log);
  for (uint32_t chunk : {1u, 3u, 7u, 64u, 4096u}) {
    sampling::RunLogStreamer s;
    s.openString(data);
    pm::StreamingPostmortemOptions opts;
    opts.chunkSamples = chunk;
    pm::BlameReport streamed;
    pm::StreamingPostmortemStats stats;
    sampling::RunLog meta;
    ASSERT_TRUE(pm::runPostmortemStreaming(m, p.moduleBlame(), s, opts, streamed, &meta,
                                           &stats));
    EXPECT_TRUE(streamed == batch) << "chunkSamples=" << chunk;
    EXPECT_EQ(stats.samples, log.samples.size());
    EXPECT_EQ(stats.chunks, (stats.samples + chunk - 1) / chunk);
  }
}

TEST(StreamingPostmortem, PeakMemoryIndependentOfLogLength) {
  ProfileOptions popts;
  popts.run.sampleThreshold = 101;
  Profiler p = test::profileSource(
      "const D = {0..#32};\nvar A: [D] real;\nproc main() { forall i in D { var t = 0.0; for "
      "j in 0..#20 { t += i * j; } A[i] = t; } }",
      popts);
  const ir::Module& m = p.compilation()->module();
  sampling::RunLog base = p.runResult()->log;
  ASSERT_FALSE(base.samples.empty());

  // Grow the log 1x / 8x / 64x by replicating its own samples: distinct blame
  // rows stay fixed while the log length explodes.
  auto statsFor = [&](int replicas) {
    sampling::RunLog big = base;
    for (int r = 1; r < replicas; ++r)
      big.samples.insert(big.samples.end(), base.samples.begin(), base.samples.end());
    std::string path =
        writeTemp("cb_stream_rss.cblog", sampling::serializeRunLogBinary(big));
    pm::StreamingPostmortemOptions opts;
    opts.chunkSamples = 256;
    pm::BlameReport out;
    pm::StreamingPostmortemStats stats;
    EXPECT_TRUE(
        pm::runPostmortemStreamingFile(m, p.moduleBlame(), path, opts, out, nullptr, &stats));
    EXPECT_EQ(stats.samples, base.samples.size() * static_cast<uint64_t>(replicas));
    std::remove(path.c_str());
    return stats;
  };

  pm::StreamingPostmortemStats s1 = statsFor(1);
  pm::StreamingPostmortemStats s8 = statsFor(8);
  pm::StreamingPostmortemStats s64 = statsFor(64);
  // The decode buffer is a fixed-size window and the accumulator footprint is
  // a function of distinct rows only — both must stay flat as the log grows
  // 64-fold (the disk file grows from ~100 KiB to several MiB).
  EXPECT_EQ(s8.decodeBufferBytes, s1.decodeBufferBytes);
  EXPECT_EQ(s64.decodeBufferBytes, s1.decodeBufferBytes);
  ASSERT_GT(s1.peakAccumulatorBytes, 0u);
  EXPECT_EQ(s8.peakAccumulatorBytes, s1.peakAccumulatorBytes);
  EXPECT_EQ(s64.peakAccumulatorBytes, s1.peakAccumulatorBytes);
}

TEST(StreamingPostmortem, NullBlameYieldsEmptyReportLikeFastPath) {
  sampling::RunLog log = makeLog();
  auto c = fe::Compilation::fromString(
      "t.chpl",
      "const D = {0..#64};\nvar A: [D] real;\nproc main() { forall i in D { var t = 0.0; for j "
      "in 0..#30 { t += i * j; } A[i] = t; } }");
  ASSERT_TRUE(c->ok());
  std::string data = sampling::serializeRunLogBinary(log);
  sampling::RunLogStreamer s;
  s.openString(data);
  pm::BlameReport out;
  pm::StreamingPostmortemStats stats;
  ASSERT_TRUE(pm::runPostmortemStreaming(c->module(), nullptr, s, {}, out, nullptr, &stats));
  EXPECT_TRUE(out == pm::BlameReport{});
  EXPECT_EQ(stats.samples, log.samples.size());
}

TEST(StreamingPostmortem, RejectsCorruptLogs) {
  pm::BlameReport out;
  Profiler p = test::profileSource("proc main() { var x = 1; writeln(x); }");
  std::string path = writeTemp("cb_stream_bad.cblog", "not a log at all");
  EXPECT_FALSE(pm::runPostmortemStreamingFile(p.compilation()->module(), p.moduleBlame(),
                                              path, {}, out));
  std::remove(path.c_str());
  EXPECT_FALSE(pm::runPostmortemStreamingFile(p.compilation()->module(), p.moduleBlame(),
                                              ::testing::TempDir() + "/cb_no_such_file", {},
                                              out));
}

}  // namespace
}  // namespace cb
