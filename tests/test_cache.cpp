// Tests of the two-tier analysis cache behind profiling-as-a-service:
// ModuleBlame byte round-trips, the content-hash key, and — the part that
// earns the "silent cold fallback" contract — robustness against truncated,
// corrupted, version-bumped, mismatched and concurrently-written entries.
// A cache defect must never change a report; at worst it costs a re-analysis.
//
// Suite naming feeds the CTest labels: Property*.* carry the `property`
// label, the rest land in `unit`.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "cache/analysis_cache.h"
#include "support/rng.h"
#include "test_util.h"

namespace cb {
namespace {

const char* kProg =
    "const D = {0..#40};\nvar A: [D] real;\nproc main() { forall i in D { var t = 0.0; for j "
    "in 0..#20 { t += i * j; } A[i] = t; } }";

std::string freshDir(const std::string& tag) {
  std::string d = ::testing::TempDir() + "/cb_cache_" + tag;
  std::filesystem::remove_all(d);
  return d;
}

std::string readFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), {});
}

void writeFile(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Serialization round-trip + key hashing
// ---------------------------------------------------------------------------

TEST(Cache, ModuleBlameByteRoundTrip) {
  Profiler p = test::profileSource(kProg);
  const ir::Module& m = p.compilation()->module();
  std::string bytes = cache::serializeModuleBlame(*p.moduleBlame());
  an::ModuleBlame back;
  ASSERT_TRUE(cache::deserializeModuleBlame(bytes, m, back));
  // Canonical-form check: re-serializing the rebuilt database must reproduce
  // the exact bytes (so a warm report is bit-identical by construction).
  EXPECT_EQ(cache::serializeModuleBlame(back), bytes);
}

TEST(Cache, DeserializeRejectsTruncationAndCorruption) {
  Profiler p = test::profileSource(kProg);
  const ir::Module& m = p.compilation()->module();
  std::string bytes = cache::serializeModuleBlame(*p.moduleBlame());
  an::ModuleBlame out;
  Rng rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    std::string mutated = bytes;
    if (trial % 2 == 0) {
      mutated.resize(rng.next() % bytes.size());
    } else {
      for (int k = 0; k < 3; ++k)
        mutated[rng.next() % mutated.size()] ^= static_cast<char>(1 + rng.next() % 255);
    }
    if (mutated == bytes) continue;
    an::ModuleBlame scratch;
    cache::deserializeModuleBlame(mutated, m, scratch);  // must not crash
  }
  // Structural mismatch: bytes from one module must not bind to another.
  Profiler q = test::profileSource("proc main() { var x = 3; writeln(x); }");
  EXPECT_FALSE(cache::deserializeModuleBlame(bytes, q.compilation()->module(), out));
}

TEST(Cache, HashProgramSeparatesSourcesAndOptions) {
  fe::CompileOptions copts;
  an::BlameOptions bopts;
  uint64_t base = cache::hashProgram("a.chpl", kProg, copts, bopts);
  EXPECT_EQ(cache::hashProgram("a.chpl", kProg, copts, bopts), base);
  EXPECT_NE(cache::hashProgram("b.chpl", kProg, copts, bopts), base);
  std::string edited = std::string(kProg) + " ";
  EXPECT_NE(cache::hashProgram("a.chpl", edited, copts, bopts), base);
}

// ---------------------------------------------------------------------------
// Disk tier: hit/miss mechanics + robustness
// ---------------------------------------------------------------------------

TEST(Cache, DiskStoreThenLoadHits) {
  Profiler p = test::profileSource(kProg);
  const ir::Module& m = p.compilation()->module();
  cache::AnalysisCache disk(freshDir("hit"));
  ASSERT_TRUE(disk.enabled());
  uint64_t key = 0x1234567890abcdefULL;
  an::ModuleBlame out;
  EXPECT_FALSE(disk.load(key, m, out));  // cold
  ASSERT_TRUE(disk.store(key, m, *p.moduleBlame()));
  EXPECT_TRUE(disk.load(key, m, out));  // warm
  EXPECT_EQ(cache::serializeModuleBlame(out), cache::serializeModuleBlame(*p.moduleBlame()));
  EXPECT_EQ(disk.hits(), 1u);
  EXPECT_EQ(disk.misses(), 1u);
  EXPECT_FALSE(disk.load(key + 1, m, out));  // different key -> its own entry
}

TEST(Cache, DisabledCacheNeverHitsOrStores) {
  Profiler p = test::profileSource(kProg);
  cache::AnalysisCache disk("");
  EXPECT_FALSE(disk.enabled());
  an::ModuleBlame out;
  EXPECT_FALSE(disk.store(7, p.compilation()->module(), *p.moduleBlame()));
  EXPECT_FALSE(disk.load(7, p.compilation()->module(), out));
}

// Every way an on-disk entry can be damaged must degrade to a silent miss —
// never a crash, never a wrong hit.
TEST(Cache, DamagedEntriesFallBackToCold) {
  Profiler p = test::profileSource(kProg);
  const ir::Module& m = p.compilation()->module();
  cache::AnalysisCache disk(freshDir("damage"));
  uint64_t key = 99;
  ASSERT_TRUE(disk.store(key, m, *p.moduleBlame()));
  std::string good = readFile(disk.entryPath(key));
  ASSERT_FALSE(good.empty());
  an::ModuleBlame out;

  auto expectMiss = [&](const std::string& bytes, const char* what) {
    writeFile(disk.entryPath(key), bytes);
    EXPECT_FALSE(disk.load(key, m, out)) << what;
  };
  expectMiss("", "empty file");
  expectMiss(good.substr(0, good.size() / 2), "truncated payload");
  expectMiss(good.substr(0, 3), "truncated header");
  {
    std::string bad = good;
    bad[0] ^= 0x40;  // magic
    expectMiss(bad, "bad magic");
  }
  {
    std::string bad = good;
    bad[4] = static_cast<char>(cache::kAnalysisCacheVersion + 1);
    expectMiss(bad, "future version");
  }
  {
    std::string bad = good;
    bad[5] ^= 0x01;  // stored key hash
    expectMiss(bad, "key mismatch");
  }
  {
    std::string bad = good;
    bad[bad.size() - 1] ^= 0x01;  // checksum
    expectMiss(bad, "checksum mismatch");
  }
  // And a random-corruption sweep over the whole entry.
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    std::string bad = good;
    bad[rng.next() % bad.size()] ^= static_cast<char>(1 + rng.next() % 255);
    if (bad == good) continue;
    writeFile(disk.entryPath(key), bad);
    an::ModuleBlame scratch;
    if (disk.load(key, m, scratch))  // a surviving hit must be byte-perfect
      EXPECT_EQ(cache::serializeModuleBlame(scratch),
                cache::serializeModuleBlame(*p.moduleBlame()));
  }
  // Restore and confirm the path still works after all that abuse.
  writeFile(disk.entryPath(key), good);
  EXPECT_TRUE(disk.load(key, m, out));
}

TEST(Cache, ConcurrentStoresAndLoadsAreSafe) {
  Profiler p = test::profileSource(kProg);
  const ir::Module& m = p.compilation()->module();
  cache::AnalysisCache disk(freshDir("race"));
  std::string expect = cache::serializeModuleBlame(*p.moduleBlame());
  std::vector<std::thread> threads;
  std::atomic<int> goodHits{0};
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        if (t % 2 == 0) {
          disk.store(5, m, *p.moduleBlame());
        } else {
          an::ModuleBlame out;
          if (disk.load(5, m, out)) {
            // Atomic publish: a reader sees a complete entry or nothing.
            EXPECT_EQ(cache::serializeModuleBlame(out), expect);
            ++goodHits;
          }
        }
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_GT(goodHits.load(), 0);
}

// ---------------------------------------------------------------------------
// Profiler integration: warm == cold, bit for bit
// ---------------------------------------------------------------------------

TEST(PropertyCacheEquivalence, WarmReportBitIdenticalAcrossCorpus) {
  for (const char* prog : {"minimd", "clomp"}) {
    std::string dir = freshDir(std::string("corpus_") + prog);
    ProfileOptions opts;
    opts.cacheDir = dir;

    Profiler cold(opts);
    ASSERT_TRUE(cold.profileFile(assetProgram(prog))) << cold.lastError();
    EXPECT_FALSE(cold.analysisCacheHit());

    Profiler warm(opts);
    ASSERT_TRUE(warm.profileFile(assetProgram(prog))) << warm.lastError();
    EXPECT_TRUE(warm.analysisCacheHit()) << prog;

    ProfileOptions plain;
    Profiler uncached(plain);
    ASSERT_TRUE(uncached.profileFile(assetProgram(prog)));

    ASSERT_NE(cold.blameReport(), nullptr);
    ASSERT_NE(warm.blameReport(), nullptr);
    EXPECT_TRUE(*warm.blameReport() == *cold.blameReport()) << prog;
    EXPECT_TRUE(*warm.blameReport() == *uncached.blameReport()) << prog;
    EXPECT_EQ(warm.dataCentricText(), uncached.dataCentricText()) << prog;
  }
}

TEST(Cache, ProfilerSurvivesDamagedCacheDir) {
  std::string dir = freshDir("prof_damage");
  ProfileOptions opts;
  opts.cacheDir = dir;
  Profiler cold(opts);
  ASSERT_TRUE(cold.profileString("test.chpl", kProg));
  // Corrupt the one entry the cold run stored, then profile again: silent
  // cold fallback with an identical report, and the entry is re-published.
  cache::AnalysisCache disk(dir);
  std::string entry = disk.entryPath(cold.programKey());
  std::string bytes = readFile(entry);
  ASSERT_FALSE(bytes.empty());
  writeFile(entry, bytes.substr(0, bytes.size() / 3));
  Profiler again(opts);
  ASSERT_TRUE(again.profileString("test.chpl", kProg));
  EXPECT_FALSE(again.analysisCacheHit());
  EXPECT_TRUE(*again.blameReport() == *cold.blameReport());
  Profiler warm(opts);
  ASSERT_TRUE(warm.profileString("test.chpl", kProg));
  EXPECT_TRUE(warm.analysisCacheHit());
  EXPECT_TRUE(*warm.blameReport() == *cold.blameReport());
}

// ---------------------------------------------------------------------------
// Resident tier
// ---------------------------------------------------------------------------

TEST(Cache, ResidentLruEvictsOldest) {
  cache::ResidentProgramCache lru(2);
  auto prog = std::make_shared<cache::CachedProgram>();
  lru.insert(1, prog);
  lru.insert(2, prog);
  EXPECT_NE(lru.find(1), nullptr);  // 1 is now most-recently-used
  lru.insert(3, prog);              // evicts 2
  EXPECT_EQ(lru.find(2), nullptr);
  EXPECT_NE(lru.find(1), nullptr);
  EXPECT_NE(lru.find(3), nullptr);
  EXPECT_EQ(lru.size(), 2u);
}

TEST(Cache, ResidentEntriesSurviveEvictionWhileHeld) {
  cache::ResidentProgramCache lru(1);
  Profiler p = test::profileSource(kProg);
  auto prog = std::make_shared<cache::CachedProgram>();
  prog->blame = std::make_shared<an::ModuleBlame>(*p.moduleBlame());
  lru.insert(1, prog);
  std::shared_ptr<const cache::CachedProgram> held = lru.find(1);
  lru.insert(2, std::make_shared<cache::CachedProgram>());  // evicts 1
  EXPECT_EQ(lru.find(1), nullptr);
  ASSERT_NE(held, nullptr);  // a pipeline holding the entry keeps it alive
  EXPECT_NE(held->blame, nullptr);
}

}  // namespace
}  // namespace cb
