// Unit tests for the mini-Chapel parser (AST shapes and error recovery).
#include <gtest/gtest.h>

#include "frontend/lexer.h"
#include "frontend/parser.h"

namespace cb::fe {
namespace {

Program parse(const std::string& src, bool expectErrors = false) {
  SourceManager sm;
  uint32_t f = sm.addBuffer("t.chpl", src);
  DiagnosticEngine d(sm);
  Lexer lexer(sm, f, d);
  Parser parser(lexer.lexAll(), d, f);
  Program p = parser.parseProgram();
  EXPECT_EQ(d.hasErrors(), expectErrors) << d.renderAll();
  return p;
}

TEST(Parser, ConfigConst) {
  Program p = parse("config const n = 16;");
  ASSERT_EQ(p.globals.size(), 1u);
  EXPECT_TRUE(p.globals[0].isConfig);
  EXPECT_TRUE(p.globals[0].isConst);
  EXPECT_EQ(p.globals[0].name, "n");
  ASSERT_NE(p.globals[0].init, nullptr);
  EXPECT_EQ(p.globals[0].init->kind, ExprKind::IntLit);
}

TEST(Parser, GlobalWithDeclaredType) {
  Program p = parse("var x: real;");
  ASSERT_EQ(p.globals.size(), 1u);
  ASSERT_NE(p.globals[0].type, nullptr);
  EXPECT_EQ(p.globals[0].type->kind, TypeExprKind::Named);
  EXPECT_EQ(p.globals[0].type->name, "real");
}

TEST(Parser, GlobalAlias) {
  Program p = parse("var RealPos => Pos[binSpace];");
  ASSERT_EQ(p.globals.size(), 1u);
  EXPECT_TRUE(p.globals[0].isAlias);
  EXPECT_EQ(p.globals[0].init->kind, ExprKind::Index);
}

TEST(Parser, RecordDecl) {
  Program p = parse("record atom { var v: 3*real; var n: int; }");
  ASSERT_EQ(p.records.size(), 1u);
  EXPECT_EQ(p.records[0].name, "atom");
  ASSERT_EQ(p.records[0].fields.size(), 2u);
  EXPECT_EQ(p.records[0].fields[0].type->kind, TypeExprKind::HomTuple);
  EXPECT_EQ(p.records[0].fields[0].type->tupleArity, 3u);
}

TEST(Parser, TypeAlias) {
  Program p = parse("type v3 = 3*real;");
  ASSERT_EQ(p.typeAliases.size(), 1u);
  EXPECT_EQ(p.typeAliases[0].name, "v3");
  EXPECT_EQ(p.typeAliases[0].type->kind, TypeExprKind::HomTuple);
}

TEST(Parser, TopLevelOrderIsPreserved) {
  Program p = parse("const a = 1; record R { var x: int; } const b = 2; proc main() { }");
  ASSERT_EQ(p.order.size(), 4u);
  EXPECT_EQ(p.order[0].kind, TopLevelRef::Kind::Global);
  EXPECT_EQ(p.order[1].kind, TopLevelRef::Kind::Record);
  EXPECT_EQ(p.order[2].kind, TopLevelRef::Kind::Global);
  EXPECT_EQ(p.order[3].kind, TopLevelRef::Kind::Proc);
}

TEST(Parser, ProcWithRefParams) {
  Program p = parse("proc f(ref a: 8*real, b: int): real { return b; }");
  ASSERT_EQ(p.procs.size(), 1u);
  const ProcDecl& d = p.procs[0];
  ASSERT_EQ(d.params.size(), 2u);
  EXPECT_EQ(d.params[0].intent, Intent::Ref);
  EXPECT_EQ(d.params[1].intent, Intent::Value);
  ASSERT_NE(d.returnType, nullptr);
}

TEST(Parser, ArrayTypeWithDomainExpr) {
  Program p = parse("proc f(A: [Elems] real) { }");
  const TypeExpr& t = *p.procs[0].params[0].type;
  EXPECT_EQ(t.kind, TypeExprKind::Array);
  EXPECT_EQ(t.domainExpr->kind, ExprKind::Ident);
  EXPECT_EQ(t.elem->kind, TypeExprKind::Named);
}

TEST(Parser, ParenthesizedTypeIsNotATuple) {
  Program p = parse("proc f(h: 8*(4*real)) { }");
  const TypeExpr& t = *p.procs[0].params[0].type;
  EXPECT_EQ(t.kind, TypeExprKind::HomTuple);
  EXPECT_EQ(t.tupleArity, 8u);
  EXPECT_EQ(t.elem->kind, TypeExprKind::HomTuple);  // (4*real) unwrapped
  EXPECT_EQ(t.elem->tupleArity, 4u);
}

TEST(Parser, PrecedenceMulOverAdd) {
  Program p = parse("proc main() { var x = 1 + 2 * 3; }");
  const Stmt& s = *p.procs[0].body[0];
  ASSERT_EQ(s.kind, StmtKind::DeclVar);
  EXPECT_EQ(s.init->binOp, BinOp::Add);
  EXPECT_EQ(s.init->args[1]->binOp, BinOp::Mul);
}

TEST(Parser, PowerIsRightAssociative) {
  Program p = parse("proc main() { var x = 2.0 ** 3.0 ** 2.0; }");
  const Expr& e = *p.procs[0].body[0]->init;
  EXPECT_EQ(e.binOp, BinOp::Pow);
  EXPECT_EQ(e.args[1]->binOp, BinOp::Pow);
}

TEST(Parser, RangeBindsLooserThanAdditive) {
  Program p = parse("proc main() { for i in 1..n-1 { } }");
  const Stmt& loop = *p.procs[0].body[0];
  ASSERT_EQ(loop.head.iterands.size(), 1u);
  const Expr& r = *loop.head.iterands[0];
  EXPECT_EQ(r.kind, ExprKind::Range);
  EXPECT_EQ(r.args[1]->kind, ExprKind::Binary);  // hi = n-1
}

TEST(Parser, IfThenSingleStatement) {
  Program p = parse("proc main() { if a < b then a = b + 1; }");
  const Stmt& s = *p.procs[0].body[0];
  EXPECT_EQ(s.kind, StmtKind::If);
  ASSERT_EQ(s.body.size(), 1u);
  EXPECT_EQ(s.body[0]->kind, StmtKind::Assign);
}

TEST(Parser, IfElseChain) {
  Program p = parse("proc main() { if a { } else if b { } else { c = 1; } }");
  const Stmt& s = *p.procs[0].body[0];
  EXPECT_EQ(s.kind, StmtKind::If);
  ASSERT_EQ(s.elseBody.size(), 1u);
  EXPECT_EQ(s.elseBody[0]->kind, StmtKind::If);
  EXPECT_EQ(s.elseBody[0]->elseBody.size(), 1u);  // the final else's statement
}

TEST(Parser, ZippedForall) {
  Program p = parse("proc main() { forall (a, b) in zip(A, B) { } }");
  const Stmt& s = *p.procs[0].body[0];
  EXPECT_EQ(s.kind, StmtKind::Forall);
  EXPECT_TRUE(s.head.zipped);
  EXPECT_EQ(s.head.indexNames, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(s.head.iterands.size(), 2u);
}

TEST(Parser, ForParamBounds) {
  Program p = parse("proc main() { for param i in 1..8 { } }");
  const Stmt& s = *p.procs[0].body[0];
  EXPECT_EQ(s.kind, StmtKind::ForParam);
  EXPECT_EQ(s.paramLo, 1);
  EXPECT_EQ(s.paramHi, 8);
}

TEST(Parser, ForParamCountedRange) {
  Program p = parse("proc main() { for param i in 0..#4 { } }");
  const Stmt& s = *p.procs[0].body[0];
  EXPECT_EQ(s.paramLo, 0);
  EXPECT_EQ(s.paramHi, 3);
}

TEST(Parser, CoforallOverRange) {
  Program p = parse("proc main() { coforall t in 0..#4 { } }");
  EXPECT_EQ(p.procs[0].body[0]->kind, StmtKind::Coforall);
}

TEST(Parser, CompoundAssignments) {
  Program p = parse("proc main() { x += 1; y -= 2; z *= 3; w /= 4; }");
  EXPECT_EQ(p.procs[0].body[0]->assignOp, AssignOp::Add);
  EXPECT_EQ(p.procs[0].body[1]->assignOp, AssignOp::Sub);
  EXPECT_EQ(p.procs[0].body[2]->assignOp, AssignOp::Mul);
  EXPECT_EQ(p.procs[0].body[3]->assignOp, AssignOp::Div);
}

TEST(Parser, TupleLiteralVsParen) {
  Program p = parse("proc main() { var t = (1, 2, 3); var x = (1); }");
  EXPECT_EQ(p.procs[0].body[0]->init->kind, ExprKind::TupleLit);
  EXPECT_EQ(p.procs[0].body[1]->init->kind, ExprKind::IntLit);
}

TEST(Parser, DomainLiteral2D) {
  Program p = parse("const D = {0..#4, 0..#8};");
  const Expr& e = *p.globals[0].init;
  EXPECT_EQ(e.kind, ExprKind::DomainLit);
  EXPECT_EQ(e.args.size(), 2u);
  EXPECT_TRUE(e.args[0]->counted);
}

TEST(Parser, ChainedTupleIndexing) {
  Program p = parse("proc main() { var x = hourgam(j)(i); }");
  const Expr& e = *p.procs[0].body[0]->init;
  EXPECT_EQ(e.kind, ExprKind::TupleIndex);
  EXPECT_EQ(e.args[0]->kind, ExprKind::Call);
}

TEST(Parser, TupleIndexAfterIndexAndField) {
  Program p = parse("proc main() { var a = Pos[b][i](1); var c = bin.force(2); }");
  EXPECT_EQ(p.procs[0].body[0]->init->kind, ExprKind::TupleIndex);
  // `.force(2)` parses as a method call; lowering resolves it to a
  // tuple-typed field access.
  EXPECT_EQ(p.procs[0].body[1]->init->kind, ExprKind::MethodCall);
}

TEST(Parser, MethodCallAndField) {
  Program p = parse("proc main() { var a = D.expand(1); var b = D.size; }");
  EXPECT_EQ(p.procs[0].body[0]->init->kind, ExprKind::MethodCall);
  EXPECT_EQ(p.procs[0].body[1]->init->kind, ExprKind::Field);
}

TEST(Parser, UseStatementIgnored) {
  Program p = parse("use Time;\nproc main() { }");
  EXPECT_EQ(p.procs.size(), 1u);
}

TEST(Parser, ErrorRecoveryAtTopLevel) {
  Program p = parse("@@@ ; proc main() { }", true);
  EXPECT_EQ(p.procs.size(), 1u);  // recovered and parsed main
}

TEST(Parser, MissingSemicolonIsError) { parse("proc main() { var x = 1 }", true); }

TEST(Parser, LocalAliasDecl) {
  Program p = parse("proc main() { var npos => Pos[DistSpace]; }");
  EXPECT_TRUE(p.procs[0].body[0]->isAlias);
}

}  // namespace
}  // namespace cb::fe
