// Unit tests for the support layer: interner, source manager, diagnostics,
// text tables, PRNG.
#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "support/interner.h"
#include "support/rng.h"
#include "support/source_manager.h"
#include "support/table.h"

namespace cb {
namespace {

TEST(Interner, EmptySymbolIsZero) {
  StringInterner in;
  EXPECT_TRUE(Symbol().empty());
  EXPECT_EQ(in.intern(""), Symbol(0));
}

TEST(Interner, SameStringSameSymbol) {
  StringInterner in;
  Symbol a = in.intern("hello");
  Symbol b = in.intern("hello");
  EXPECT_EQ(a, b);
}

TEST(Interner, DifferentStringsDifferentSymbols) {
  StringInterner in;
  EXPECT_NE(in.intern("a"), in.intern("b"));
}

TEST(Interner, RoundTrip) {
  StringInterner in;
  Symbol s = in.intern("partArray");
  EXPECT_EQ(in.str(s), "partArray");
}

TEST(Interner, ManySymbolsStayStable) {
  StringInterner in;
  std::vector<Symbol> syms;
  for (int i = 0; i < 1000; ++i) syms.push_back(in.intern("sym" + std::to_string(i)));
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(in.str(syms[i]), "sym" + std::to_string(i));
}

TEST(SourceManager, LineText) {
  SourceManager sm;
  uint32_t f = sm.addBuffer("t", "one\ntwo\nthree");
  EXPECT_EQ(sm.lineText(f, 1), "one");
  EXPECT_EQ(sm.lineText(f, 2), "two");
  EXPECT_EQ(sm.lineText(f, 3), "three");
  EXPECT_EQ(sm.lineText(f, 4), "");
}

TEST(SourceManager, LineCount) {
  SourceManager sm;
  uint32_t f = sm.addBuffer("t", "a\nb\nc\n");
  EXPECT_EQ(sm.lineCount(f), 4u);  // trailing newline opens a last empty line
}

TEST(SourceManager, RenderLoc) {
  SourceManager sm;
  uint32_t f = sm.addBuffer("prog.chpl", "x");
  EXPECT_EQ(sm.render(SourceLoc{f, 3, 7}), "prog.chpl:3:7");
  EXPECT_EQ(sm.render(SourceLoc{f, 3, 0}), "prog.chpl:3");
  EXPECT_EQ(sm.render(SourceLoc{}), "<unknown>");
}

TEST(SourceManager, MissingFileReturnsNullopt) {
  SourceManager sm;
  EXPECT_FALSE(sm.addFile("/nonexistent/definitely/not/here.chpl").has_value());
}

TEST(SourceManager, CrLfLinesStripped) {
  SourceManager sm;
  uint32_t f = sm.addBuffer("t", "one\r\ntwo\r\n");
  EXPECT_EQ(sm.lineText(f, 1), "one");
  EXPECT_EQ(sm.lineText(f, 2), "two");
}

TEST(Diagnostics, ErrorCounting) {
  SourceManager sm;
  uint32_t f = sm.addBuffer("t", "x");
  DiagnosticEngine d(sm);
  EXPECT_FALSE(d.hasErrors());
  d.warning(SourceLoc{f, 1, 1}, "w");
  EXPECT_FALSE(d.hasErrors());
  d.error(SourceLoc{f, 1, 1}, "e");
  EXPECT_TRUE(d.hasErrors());
  EXPECT_EQ(d.numErrors(), 1u);
}

TEST(Diagnostics, RenderAllIncludesLevelAndLocation) {
  SourceManager sm;
  uint32_t f = sm.addBuffer("p.chpl", "x");
  DiagnosticEngine d(sm);
  d.error(SourceLoc{f, 2, 5}, "bad thing");
  std::string out = d.renderAll();
  EXPECT_NE(out.find("p.chpl:2:5"), std::string::npos);
  EXPECT_NE(out.find("error"), std::string::npos);
  EXPECT_NE(out.find("bad thing"), std::string::npos);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Name", "Value"});
  t.addRow({"short", "1"});
  t.addRow({"much longer name", "22"});
  std::string out = t.render();
  EXPECT_NE(out.find("| Name"), std::string::npos);
  EXPECT_NE(out.find("much longer name"), std::string::npos);
  // All data lines have equal width.
  size_t firstNl = out.find('\n');
  std::string line1 = out.substr(0, firstNl);
  for (size_t pos = 0; pos < out.size();) {
    size_t nl = out.find('\n', pos);
    if (nl == std::string::npos) break;
    EXPECT_EQ(nl - pos, line1.size());
    pos = nl + 1;
  }
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t({"a", "b"});
  t.addRow({"has,comma", "has\"quote"});
  std::string csv = t.renderCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TextTable, SeparatorGroupsRows) {
  TextTable t({"x"});
  t.addRow({"1"});
  t.addSeparator();
  t.addRow({"2"});
  std::string out = t.render();
  // header rule + top + bottom + separator = 4 rules
  size_t rules = 0;
  for (size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos; ++pos) ++rules;
  EXPECT_EQ(rules, 4u);
}

TEST(Format, FixedAndPercent) {
  EXPECT_EQ(formatFixed(1.2345, 2), "1.23");
  EXPECT_EQ(formatFixed(2.0, 1), "2.0");
  EXPECT_EQ(formatPercent(0.963), "96.3%");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double d = r.nextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoundedStaysInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.nextBounded(17), 17u);
  EXPECT_EQ(r.nextBounded(0), 0u);
}

}  // namespace
}  // namespace cb
