// Tests of run-log serialization (the monitor's on-disk dataset).
#include <gtest/gtest.h>

#include <cstdio>

#include "postmortem/attribution.h"
#include "postmortem/instance.h"
#include "sampling/log_io.h"
#include "support/rng.h"
#include "test_util.h"

namespace cb {
namespace {

sampling::RunLog makeLog() {
  auto c = fe::Compilation::fromString(
      "t.chpl",
      "const D = {0..#64};\nvar A: [D] real;\nproc main() { forall i in D { var t = 0.0; for j "
      "in 0..#30 { t += i * j; } A[i] = t; } }");
  EXPECT_TRUE(c->ok());
  rt::RunOptions o;
  o.sampleThreshold = 101;
  rt::RunResult r = rt::execute(c->module(), o);
  EXPECT_TRUE(r.ok);
  return r.log;
}

TEST(LogIo, RoundTripPreservesEverything) {
  sampling::RunLog log = makeLog();
  std::string text = sampling::serializeRunLog(log);
  sampling::RunLog back;
  ASSERT_TRUE(sampling::deserializeRunLog(text, back));
  EXPECT_EQ(back.sampleThreshold, log.sampleThreshold);
  EXPECT_EQ(back.numStreams, log.numStreams);
  EXPECT_EQ(back.totalCycles, log.totalCycles);
  ASSERT_EQ(back.samples.size(), log.samples.size());
  for (size_t i = 0; i < log.samples.size(); ++i) {
    EXPECT_EQ(back.samples[i].stream, log.samples[i].stream);
    EXPECT_EQ(back.samples[i].taskTag, log.samples[i].taskTag);
    EXPECT_EQ(back.samples[i].atCycle, log.samples[i].atCycle);
    EXPECT_EQ(back.samples[i].runtimeFrame, log.samples[i].runtimeFrame);
    EXPECT_EQ(back.samples[i].stack, log.samples[i].stack);
  }
  EXPECT_EQ(back.spawns.size(), log.spawns.size());
  EXPECT_EQ(back.allocBytesBySite, log.allocBytesBySite);
}

TEST(LogIo, FileRoundTrip) {
  sampling::RunLog log = makeLog();
  std::string path = ::testing::TempDir() + "/cb_log_io_test.cblog";
  ASSERT_TRUE(sampling::saveRunLog(log, path));
  sampling::RunLog back;
  ASSERT_TRUE(sampling::loadRunLog(path, back));
  EXPECT_EQ(back.samples.size(), log.samples.size());
  std::remove(path.c_str());
}

TEST(LogIo, RejectsGarbage) {
  sampling::RunLog out;
  EXPECT_FALSE(sampling::deserializeRunLog("", out));
  EXPECT_FALSE(sampling::deserializeRunLog("not a log\n", out));
  EXPECT_FALSE(sampling::deserializeRunLog("cblog 99 1 1 1\n", out));
  EXPECT_FALSE(sampling::deserializeRunLog("cblog 1 1 1 1\nX nonsense\n", out));
}

TEST(LogIo, ReloadedLogAttributesIdentically) {
  // Post-mortem over a reloaded log must equal post-mortem over the live
  // one (the paper's step 3 runs from the on-disk dataset).
  Profiler p;
  p.options().run.sampleThreshold = 101;
  ASSERT_TRUE(p.compileFile(assetProgram("example")) && p.analyze() && p.run() &&
              p.postProcess())
      << p.lastError();
  std::string text = sampling::serializeRunLog(p.runResult()->log);
  sampling::RunLog back;
  ASSERT_TRUE(sampling::deserializeRunLog(text, back));
  auto instances = pm::consolidate(p.compilation()->module(), back);
  pm::BlameReport report = pm::attribute(*p.moduleBlame(), instances);
  ASSERT_EQ(report.rows.size(), p.blameReport()->rows.size());
  for (size_t i = 0; i < report.rows.size(); ++i) {
    EXPECT_EQ(report.rows[i].name, p.blameReport()->rows[i].name);
    EXPECT_EQ(report.rows[i].sampleCount, p.blameReport()->rows[i].sampleCount);
  }
}

// ---------------------------------------------------------------------------
// Property suite: random logs round-trip through the serializer unchanged.
// ---------------------------------------------------------------------------

void expectLogsEqual(const sampling::RunLog& a, const sampling::RunLog& b) {
  EXPECT_EQ(a.sampleThreshold, b.sampleThreshold);
  EXPECT_EQ(a.numStreams, b.numStreams);
  EXPECT_EQ(a.totalCycles, b.totalCycles);
  EXPECT_EQ(a.commGets, b.commGets);
  EXPECT_EQ(a.commPuts, b.commPuts);
  EXPECT_EQ(a.commOnForks, b.commOnForks);
  EXPECT_EQ(a.commAggGets, b.commAggGets);
  EXPECT_EQ(a.commAggPuts, b.commAggPuts);
  EXPECT_EQ(a.commAggFlushes, b.commAggFlushes);
  EXPECT_EQ(a.commMatrix, b.commMatrix);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].stream, b.samples[i].stream) << "sample " << i;
    EXPECT_EQ(a.samples[i].taskTag, b.samples[i].taskTag) << "sample " << i;
    EXPECT_EQ(a.samples[i].atCycle, b.samples[i].atCycle) << "sample " << i;
    EXPECT_EQ(a.samples[i].runtimeFrame, b.samples[i].runtimeFrame) << "sample " << i;
    EXPECT_EQ(a.samples[i].accessKind, b.samples[i].accessKind) << "sample " << i;
    EXPECT_EQ(a.samples[i].srcLocale, b.samples[i].srcLocale) << "sample " << i;
    EXPECT_EQ(a.samples[i].dstLocale, b.samples[i].dstLocale) << "sample " << i;
    EXPECT_EQ(a.samples[i].stack, b.samples[i].stack) << "sample " << i;
  }
  ASSERT_EQ(a.spawns.size(), b.spawns.size());
  for (const auto& [tag, rec] : a.spawns) {
    auto it = b.spawns.find(tag);
    ASSERT_NE(it, b.spawns.end()) << "tag " << tag;
    EXPECT_EQ(rec.parentTag, it->second.parentTag);
    EXPECT_EQ(rec.taskFn, it->second.taskFn);
    EXPECT_EQ(rec.spawnInstr, it->second.spawnInstr);
    EXPECT_EQ(rec.preSpawnStack, it->second.preSpawnStack);
  }
  EXPECT_EQ(a.allocBytesBySite, b.allocBytesBySite);
}

class PropertyLogIoRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertyLogIoRoundTrip, RandomLogsSurviveSerializeParse) {
  // Serialization needs no module: func/instr ids are opaque integers here.
  Rng rng(GetParam());
  auto randomStack = [&](size_t maxDepth) {
    std::vector<sampling::Frame> stack;
    size_t depth = rng.nextBounded(maxDepth + 1);
    for (size_t i = 0; i < depth; ++i) {
      sampling::Frame f;
      f.func = static_cast<ir::FuncId>(rng.nextBounded(1000));
      f.instr = static_cast<ir::InstrId>(rng.nextBounded(5000));
      stack.push_back(f);
    }
    return stack;
  };

  for (int trial = 0; trial < 16; ++trial) {
    sampling::RunLog log;
    log.sampleThreshold = rng.next();
    log.numStreams = static_cast<uint32_t>(rng.nextBounded(64));
    log.totalCycles = rng.next();

    // Deep spawn-tag chain: tag k parents tag k-1 (chain of length numTags).
    uint64_t numTags = rng.nextBounded(40);
    for (uint64_t tag = 1; tag <= numTags; ++tag) {
      sampling::SpawnRecord rec;
      rec.tag = tag;
      rec.parentTag = tag - 1;
      rec.taskFn = static_cast<ir::FuncId>(rng.nextBounded(1000));
      rec.spawnInstr = static_cast<ir::InstrId>(rng.nextBounded(5000));
      rec.preSpawnStack = randomStack(8);  // may be empty
      log.spawns.emplace(tag, std::move(rec));
    }

    uint64_t numSamples = rng.nextBounded(200);
    for (uint64_t i = 0; i < numSamples; ++i) {
      sampling::RawSample s;
      s.stream = static_cast<uint32_t>(rng.nextBounded(64));
      s.atCycle = rng.next();
      if (rng.nextBounded(5) == 0) {
        // Idle runtime-frame sample: empty stack by construction.
        s.runtimeFrame = static_cast<sampling::RuntimeFrameKind>(1 + rng.nextBounded(3));
      } else {
        s.taskTag = numTags ? rng.nextBounded(numTags + 1) : 0;
        s.stack = randomStack(10);  // empty-stack edge case included
        s.accessKind = static_cast<sampling::AccessKind>(rng.nextBounded(4));
        if (s.accessKind == sampling::AccessKind::RemoteGet ||
            s.accessKind == sampling::AccessKind::RemotePut) {
          // The locale pair is only meaningful for remote accesses.
          s.srcLocale = static_cast<int32_t>(rng.nextBounded(64));
          s.dstLocale = static_cast<int32_t>((s.srcLocale + 1 + rng.nextBounded(63)) % 64);
        }
      }
      log.samples.push_back(std::move(s));
    }

    uint64_t numSites = rng.nextBounded(20);
    for (uint64_t i = 0; i < numSites; ++i)
      log.allocBytesBySite[rng.next()] = rng.next();

    // Exact comm counters and a sparse random comm matrix.
    log.commGets = rng.nextBounded(100000);
    log.commPuts = rng.nextBounded(100000);
    log.commOnForks = rng.nextBounded(1000);
    log.commAggGets = rng.nextBounded(100000);
    log.commAggPuts = rng.nextBounded(100000);
    log.commAggFlushes = rng.nextBounded(10000);
    for (uint64_t i = 0, n = rng.nextBounded(12); i < n; ++i) {
      int64_t src = static_cast<int64_t>(rng.nextBounded(64));
      int64_t dst = static_cast<int64_t>((src + 1 + rng.nextBounded(63)) % 64);
      log.commMatrix[sampling::RunLog::pairKey(src, dst)] = 1 + rng.nextBounded(1 << 20);
    }

    sampling::RunLog back;
    ASSERT_TRUE(sampling::deserializeRunLog(sampling::serializeRunLog(log), back))
        << "trial " << trial;
    expectLogsEqual(log, back);
  }
}

TEST_P(PropertyLogIoRoundTrip, SecondRoundTripIsAFixedPoint) {
  // parse(serialize(x)) is a fixed point: running the trip twice changes
  // nothing (spawn/alloc map iteration order may shuffle lines, but the
  // parsed structure must be stable).
  Rng rng(GetParam() ^ 0xABCDEFull);
  sampling::RunLog log;
  log.sampleThreshold = 101;
  log.numStreams = 4;
  for (uint64_t tag = 1; tag <= 12; ++tag) {
    sampling::SpawnRecord rec;
    rec.tag = tag;
    rec.parentTag = tag / 2;
    rec.preSpawnStack.push_back({static_cast<ir::FuncId>(rng.nextBounded(10)),
                                 static_cast<ir::InstrId>(rng.nextBounded(100))});
    log.spawns.emplace(tag, std::move(rec));
  }
  std::string once = sampling::serializeRunLog(log);
  sampling::RunLog back;
  ASSERT_TRUE(sampling::deserializeRunLog(once, back));
  std::string twice = sampling::serializeRunLog(back);
  sampling::RunLog back2;
  ASSERT_TRUE(sampling::deserializeRunLog(twice, back2));
  expectLogsEqual(back, back2);
}

TEST_P(PropertyLogIoRoundTrip, RandomLogsSurviveBinaryRoundTrip) {
  Rng rng(GetParam() ^ 0xB19A2Full);
  for (int trial = 0; trial < 16; ++trial) {
    sampling::RunLog log;
    log.sampleThreshold = rng.next();
    log.numStreams = static_cast<uint32_t>(rng.nextBounded(64));
    log.totalCycles = rng.next();
    uint64_t numSamples = rng.nextBounded(120);
    for (uint64_t i = 0; i < numSamples; ++i) {
      sampling::RawSample s;
      s.stream = static_cast<uint32_t>(rng.nextBounded(64));
      s.taskTag = rng.nextBounded(40);
      s.atCycle = rng.next();  // random order: deltas exercise negatives
      s.accessKind = static_cast<sampling::AccessKind>(rng.nextBounded(4));
      if (s.accessKind == sampling::AccessKind::RemoteGet ||
          s.accessKind == sampling::AccessKind::RemotePut) {
        s.srcLocale = static_cast<int32_t>(rng.nextBounded(1024));
        s.dstLocale = static_cast<int32_t>((s.srcLocale + 1) % 1024);
      }
      size_t depth = rng.nextBounded(10);
      for (size_t d = 0; d < depth; ++d)
        s.stack.push_back({static_cast<ir::FuncId>(rng.nextBounded(1000)),
                           static_cast<ir::InstrId>(rng.nextBounded(5000))});
      log.samples.push_back(std::move(s));
    }
    log.commGets = rng.nextBounded(1 << 20);
    log.commAggPuts = rng.nextBounded(1 << 20);
    log.commAggFlushes = rng.nextBounded(1 << 12);
    for (uint64_t i = 0, n = rng.nextBounded(10); i < n; ++i)
      log.commMatrix[sampling::RunLog::pairKey(static_cast<int64_t>(rng.nextBounded(512)),
                                               static_cast<int64_t>(rng.nextBounded(512)))] =
          1 + rng.nextBounded(1 << 16);
    uint64_t numTags = rng.nextBounded(30);
    for (uint64_t tag = 1; tag <= numTags; ++tag) {
      sampling::SpawnRecord rec;
      rec.tag = tag * 3 + rng.nextBounded(2);  // non-contiguous tags
      rec.parentTag = rng.nextBounded(tag);
      rec.taskFn = static_cast<ir::FuncId>(rng.nextBounded(1000));
      rec.spawnInstr = static_cast<ir::InstrId>(rng.nextBounded(5000));
      uint64_t t = rec.tag;
      log.spawns.emplace(t, std::move(rec));
    }
    for (uint64_t i = 0, n = rng.nextBounded(20); i < n; ++i)
      log.allocBytesBySite[rng.next()] = rng.next();

    std::string bin = sampling::serializeRunLogBinary(log);
    sampling::RunLog back;
    ASSERT_TRUE(sampling::deserializeRunLog(bin, back)) << "trial " << trial;
    expectLogsEqual(log, back);
    // The binary encoding is a deterministic function of the contents:
    // re-serializing the parsed log reproduces the bytes exactly.
    EXPECT_EQ(sampling::serializeRunLogBinary(back), bin) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyLogIoRoundTrip,
                         ::testing::Values(7ull, 1234ull, 0xDEADBEEFull));

// ---------------------------------------------------------------------------
// Binary format: cross-format identity, auto-detection, rejection paths.
// ---------------------------------------------------------------------------

TEST(LogIoBinary, TextToBinaryToTextIsTheIdentity) {
  sampling::RunLog log = makeLog();
  // text -> parse -> binary -> parse: structurally identical to the source.
  std::string text = sampling::serializeRunLog(log);
  sampling::RunLog fromText;
  ASSERT_TRUE(sampling::deserializeRunLog(text, fromText));
  std::string bin = sampling::serializeRunLogBinary(fromText);
  sampling::RunLog fromBin;
  ASSERT_TRUE(sampling::deserializeRunLog(bin, fromBin));
  expectLogsEqual(fromText, fromBin);
  expectLogsEqual(log, fromBin);
  // And the regenerated text parses back to the same structure again.
  sampling::RunLog again;
  ASSERT_TRUE(sampling::deserializeRunLog(sampling::serializeRunLog(fromBin), again));
  expectLogsEqual(fromBin, again);
}

TEST(LogIoBinary, FileRoundTripAutoDetects) {
  sampling::RunLog log = makeLog();
  std::string path = ::testing::TempDir() + "/cb_log_io_test_bin.cblog";
  ASSERT_TRUE(sampling::saveRunLog(log, path, sampling::RunLogFormat::Binary));
  sampling::RunLog back;
  ASSERT_TRUE(sampling::loadRunLog(path, back));  // no format hint needed
  expectLogsEqual(log, back);
  std::remove(path.c_str());
}

TEST(LogIoBinary, RejectsTruncation) {
  sampling::RunLog log = makeLog();
  std::string bin = sampling::serializeRunLogBinary(log);
  ASSERT_GT(bin.size(), 16u);
  sampling::RunLog out;
  // Every strict prefix is malformed: record counts are declared up front,
  // so a clean cut mid-stream still leaves missing records.
  for (size_t len : {size_t{0}, size_t{3}, size_t{4}, size_t{5}, size_t{8}, bin.size() / 4,
                     bin.size() / 2, bin.size() - 1})
    EXPECT_FALSE(sampling::deserializeRunLog(bin.substr(0, len), out)) << "prefix " << len;
  // Trailing garbage after a well-formed stream is rejected too.
  EXPECT_FALSE(sampling::deserializeRunLog(bin + "x", out));
  EXPECT_TRUE(sampling::deserializeRunLog(bin, out));
}

TEST(LogIoBinary, RejectsVersionMismatchAndCorruptMagic) {
  sampling::RunLog log = makeLog();
  std::string bin = sampling::serializeRunLogBinary(log);
  sampling::RunLog out;
  std::string wrongVersion = bin;
  wrongVersion[4] = 0x7F;  // unsupported future version
  EXPECT_FALSE(sampling::deserializeRunLog(wrongVersion, out));
  std::string wrongMagic = bin;
  wrongMagic[1] = 'X';  // no longer binary; not valid text either
  EXPECT_FALSE(sampling::deserializeRunLog(wrongMagic, out));
}

TEST(LogIoBinary, CorruptedBytesNeverCrash) {
  // Flipped bytes may decode to a different (valid) log or be rejected —
  // either way the parser must stay in-bounds and terminate.
  sampling::RunLog log = makeLog();
  std::string bin = sampling::serializeRunLogBinary(log);
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = bin;
    size_t pos = 5 + rng.nextBounded(mutated.size() - 5);  // keep magic+version
    mutated[pos] = static_cast<char>(rng.nextBounded(256));
    sampling::RunLog out;
    sampling::deserializeRunLog(mutated, out);  // must not hang or fault
  }
}

// ---------------------------------------------------------------------------
// v3 comm channel: logs carrying locale pairs, aggregated-transfer counters
// and the exact comm matrix survive both formats; v1 AND v2 fixtures (text
// and hand-assembled binary) still load with the newer fields defaulted.
// ---------------------------------------------------------------------------

/// A log with live v3 payload: a 4-locale aggregated ig rank — remote
/// samples with locale pairs, agg counters, a populated comm matrix.
sampling::RunLog makeCommLog() {
  auto c = fe::Compilation::fromFile(assetProgram("ig_agg"), {});
  EXPECT_TRUE(c->ok()) << c->diags().renderAll();
  rt::RunOptions o;
  o.sampleThreshold = 997;
  o.numLocales = 4;
  o.localeId = 1;
  o.configOverrides["hereId"] = "1";
  rt::RunResult r = rt::execute(c->module(), o);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.log.commAggGets, 0u);
  EXPECT_GT(r.log.commAggFlushes, 0u);
  EXPECT_FALSE(r.log.commMatrix.empty());
  return r.log;
}

TEST(LogIoV3, CommLogRoundTripsTextAndBinary) {
  sampling::RunLog log = makeCommLog();
  // The payload must be non-trivial or this test is vacuous: at least one
  // sample must carry a remote classification with a real locale pair.
  bool sawRemotePair = false;
  for (const sampling::RawSample& s : log.samples)
    if ((s.accessKind == sampling::AccessKind::RemoteGet ||
         s.accessKind == sampling::AccessKind::RemotePut) &&
        s.srcLocale != s.dstLocale)
      sawRemotePair = true;
  EXPECT_TRUE(sawRemotePair);

  sampling::RunLog fromText, fromBin;
  ASSERT_TRUE(sampling::deserializeRunLog(sampling::serializeRunLog(log), fromText));
  expectLogsEqual(log, fromText);
  std::string bin = sampling::serializeRunLogBinary(log);
  ASSERT_TRUE(sampling::deserializeRunLog(bin, fromBin));
  expectLogsEqual(log, fromBin);
  EXPECT_EQ(sampling::serializeRunLogBinary(fromBin), bin);  // deterministic encoding
}

TEST(LogIoV3, TruncatedAndCorruptedCommLogsNeverCrash) {
  sampling::RunLog log = makeCommLog();
  std::string bin = sampling::serializeRunLogBinary(log);
  sampling::RunLog out;
  for (size_t len : {size_t{0}, size_t{4}, size_t{5}, bin.size() / 3, bin.size() / 2,
                     bin.size() - 2, bin.size() - 1})
    EXPECT_FALSE(sampling::deserializeRunLog(bin.substr(0, len), out)) << "prefix " << len;
  EXPECT_FALSE(sampling::deserializeRunLog(bin + std::string(1, '\0'), out));
  Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = bin;
    size_t pos = 5 + rng.nextBounded(mutated.size() - 5);  // keep magic+version
    mutated[pos] = static_cast<char>(rng.nextBounded(256));
    sampling::RunLog ignored;
    sampling::deserializeRunLog(mutated, ignored);  // must stay in-bounds
  }
  // Text truncation: cutting a line mid-token must not parse.
  std::string text = sampling::serializeRunLog(log);
  EXPECT_FALSE(sampling::deserializeRunLog(text.substr(0, text.size() / 2) + "Z", out));
}

TEST(LogIoCompat, Version1TextStillLoads) {
  // A frozen v1 fixture: header has no comm counters, samples have no
  // access kind and no locale pair, and there are no M lines.
  const std::string v1 =
      "cblog 1 101 2 5000\n"
      "S 0 0 150 0 2 3:7 4:9\n"
      "S 1 2 300 1 0\n"
      "W 2 0 5 11 1 3:7\n"
      "A 77 4096\n";
  sampling::RunLog log;
  ASSERT_TRUE(sampling::deserializeRunLog(v1, log));
  EXPECT_EQ(log.sampleThreshold, 101u);
  EXPECT_EQ(log.numStreams, 2u);
  EXPECT_EQ(log.totalCycles, 5000u);
  ASSERT_EQ(log.samples.size(), 2u);
  EXPECT_EQ(log.samples[0].stack.size(), 2u);
  EXPECT_EQ(log.samples[1].runtimeFrame, sampling::RuntimeFrameKind::SchedYield);
  EXPECT_EQ(log.spawns.size(), 1u);
  EXPECT_EQ(log.allocBytesBySite.at(77), 4096u);
  // Every newer field defaults.
  EXPECT_EQ(log.commGets, 0u);
  EXPECT_EQ(log.commAggGets, 0u);
  EXPECT_EQ(log.commAggFlushes, 0u);
  EXPECT_TRUE(log.commMatrix.empty());
  for (const sampling::RawSample& s : log.samples) {
    EXPECT_EQ(s.accessKind, sampling::AccessKind::None);
    EXPECT_EQ(s.srcLocale, 0);
    EXPECT_EQ(s.dstLocale, 0);
  }
}

TEST(LogIoCompat, Version2TextStillLoads) {
  // A frozen v2 fixture: comm counters in the header and a per-sample
  // access kind, but no aggregated counters, no pairs, no matrix.
  const std::string v2 =
      "cblog 2 101 2 5000 10 20 3\n"
      "S 0 0 150 0 2 1 3:7\n"
      "S 0 0 400 0 1 0\n";
  sampling::RunLog log;
  ASSERT_TRUE(sampling::deserializeRunLog(v2, log));
  EXPECT_EQ(log.commGets, 10u);
  EXPECT_EQ(log.commPuts, 20u);
  EXPECT_EQ(log.commOnForks, 3u);
  EXPECT_EQ(log.commAggGets, 0u);
  EXPECT_EQ(log.commAggPuts, 0u);
  EXPECT_EQ(log.commAggFlushes, 0u);
  EXPECT_TRUE(log.commMatrix.empty());
  ASSERT_EQ(log.samples.size(), 2u);
  EXPECT_EQ(log.samples[0].accessKind, sampling::AccessKind::RemoteGet);
  EXPECT_EQ(log.samples[0].srcLocale, 0);  // v2 has no pair channel
  EXPECT_EQ(log.samples[0].dstLocale, 0);
  EXPECT_EQ(log.samples[1].accessKind, sampling::AccessKind::Local);
  // A version from the future is rejected, not misparsed.
  EXPECT_FALSE(sampling::deserializeRunLog("cblog 7 1 1 1 1 1 1 1 1 1 1 1 1 1\n", log));
}

TEST(LogIoCompat, Version3TextStillLoads) {
  // A frozen v3 fixture: aggregated counters and the comm matrix, but no
  // bandwidth-stall counters in the header.
  const std::string v3 =
      "cblog 3 101 2 5000 10 20 3 7 8 2\n"
      "S 0 0 150 0 2 0 1 1 3:7\n"
      "M 0 1 64\n";
  sampling::RunLog log;
  ASSERT_TRUE(sampling::deserializeRunLog(v3, log));
  EXPECT_EQ(log.commAggGets, 7u);
  EXPECT_EQ(log.commAggPuts, 8u);
  EXPECT_EQ(log.commAggFlushes, 2u);
  EXPECT_EQ(log.commMemStallCycles, 0u);
  EXPECT_EQ(log.commNetStallCycles, 0u);
  EXPECT_EQ(log.commContentionCycles, 0u);
  ASSERT_EQ(log.samples.size(), 1u);
  EXPECT_EQ(log.commMatrix.at(sampling::RunLog::pairKey(0, 1)), 64u);
}

/// Minimal varint writer mirroring the on-disk encoding, for assembling
/// frozen old-version binary fixtures by hand.
void putV(std::string& s, uint64_t v) {
  while (v >= 0x80) {
    s.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  s.push_back(static_cast<char>(v));
}
uint64_t zz(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

TEST(LogIoCompat, Version1BinaryStillLoads) {
  std::string bin("\x89"
                  "CBL",
                  4);
  bin.push_back(1);  // version 1
  putV(bin, 101);    // threshold
  putV(bin, 2);      // streams
  putV(bin, 5000);   // cycles — v1 header ends here
  putV(bin, 1);      // one sample
  putV(bin, 0);      // stream
  putV(bin, 0);      // taskTag
  putV(bin, zz(150));  // cycle delta
  putV(bin, 0);      // runtime frame — v1 sample has no access kind
  putV(bin, 1);      // one frame
  putV(bin, zz(3));
  putV(bin, zz(7));
  putV(bin, 0);      // no spawns
  putV(bin, 1);      // one alloc site
  putV(bin, zz(77));
  putV(bin, 4096);   // v1 ends here: no comm matrix section
  sampling::RunLog log;
  ASSERT_TRUE(sampling::deserializeRunLog(bin, log));
  EXPECT_EQ(log.sampleThreshold, 101u);
  ASSERT_EQ(log.samples.size(), 1u);
  EXPECT_EQ(log.samples[0].atCycle, 150u);
  EXPECT_EQ(log.samples[0].accessKind, sampling::AccessKind::None);
  EXPECT_EQ(log.allocBytesBySite.at(77), 4096u);
  EXPECT_EQ(log.commGets, 0u);
  EXPECT_EQ(log.commAggGets, 0u);
  EXPECT_TRUE(log.commMatrix.empty());
}

TEST(LogIoCompat, Version2BinaryStillLoads) {
  std::string bin("\x89"
                  "CBL",
                  4);
  bin.push_back(2);  // version 2
  putV(bin, 101);
  putV(bin, 2);
  putV(bin, 5000);
  putV(bin, 10);     // commGets
  putV(bin, 20);     // commPuts
  putV(bin, 3);      // commOnForks — v2 header ends here
  putV(bin, 1);      // one sample
  putV(bin, 0);
  putV(bin, 0);
  putV(bin, zz(150));
  putV(bin, 0);      // runtime frame
  putV(bin, 2);      // access kind RemoteGet — v2 encodes NO pair after it
  putV(bin, 0);      // empty stack
  putV(bin, 0);      // no spawns
  putV(bin, 0);      // no alloc sites — v2 ends here: no matrix section
  sampling::RunLog log;
  ASSERT_TRUE(sampling::deserializeRunLog(bin, log));
  EXPECT_EQ(log.commGets, 10u);
  EXPECT_EQ(log.commPuts, 20u);
  EXPECT_EQ(log.commOnForks, 3u);
  EXPECT_EQ(log.commAggGets, 0u);
  ASSERT_EQ(log.samples.size(), 1u);
  EXPECT_EQ(log.samples[0].accessKind, sampling::AccessKind::RemoteGet);
  EXPECT_EQ(log.samples[0].srcLocale, 0);
  EXPECT_EQ(log.samples[0].dstLocale, 0);
  EXPECT_TRUE(log.commMatrix.empty());
}

/// The acceptance gate: on each paper benchmark, the binary log is lossless
/// against the text format and strictly smaller on disk.
class PropertyBinaryLogCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(PropertyBinaryLogCorpus, LosslessAndSmallerThanText) {
  Profiler p;
  p.options().run.sampleThreshold = 997;
  ASSERT_TRUE(p.compileFile(assetProgram(GetParam())) && p.analyze() && p.run())
      << p.lastError();
  const sampling::RunLog& log = p.runResult()->log;
  ASSERT_FALSE(log.samples.empty());

  std::string text = sampling::serializeRunLog(log);
  std::string bin = sampling::serializeRunLogBinary(log);
  sampling::RunLog fromText, fromBin;
  ASSERT_TRUE(sampling::deserializeRunLog(text, fromText));
  ASSERT_TRUE(sampling::deserializeRunLog(bin, fromBin));
  expectLogsEqual(fromText, fromBin);
  expectLogsEqual(log, fromBin);
  EXPECT_LT(bin.size(), text.size())
      << GetParam() << ": binary " << bin.size() << "B vs text " << text.size() << "B";
}

INSTANTIATE_TEST_SUITE_P(Programs, PropertyBinaryLogCorpus,
                         ::testing::Values("minimd", "clomp", "lulesh"));

TEST(SelectWhen, LowersAndRuns) {
  EXPECT_EQ(test::runOutput(R"(proc label(x: int): int {
  var out = 0;
  select x {
    when 1, 2 { out = 10; }
    when 3 { out = 30; }
    otherwise { out = 99; }
  }
  return out;
}
proc main() { writeln(label(1), label(2), label(3), label(7)); }
)"),
            "10 10 30 99\n");
}

TEST(SelectWhen, ImplicitBlameFromSelector) {
  // §IV.A: select-when creates implicit transfer like if: variables written
  // in when-arms take the select line into their blame sets.
  Profiler p = test::profileSource(R"(proc main() {
  var x = 2;
  var out = 0;
  select x {
    when 2 { out = 5; }
    otherwise { out = 1; }
  }
  writeln(out);
}
)");
  auto lines = test::blameLinesOf(p, "main", "out", 1, 9);
  EXPECT_TRUE(lines.count(4) || lines.count(5)) << "select/when control lines must blame out";
}

}  // namespace
}  // namespace cb
