// Tests of run-log serialization (the monitor's on-disk dataset).
#include <gtest/gtest.h>

#include <cstdio>

#include "postmortem/attribution.h"
#include "postmortem/instance.h"
#include "sampling/log_io.h"
#include "support/rng.h"
#include "test_util.h"

namespace cb {
namespace {

sampling::RunLog makeLog() {
  auto c = fe::Compilation::fromString(
      "t.chpl",
      "const D = {0..#64};\nvar A: [D] real;\nproc main() { forall i in D { var t = 0.0; for j "
      "in 0..#30 { t += i * j; } A[i] = t; } }");
  EXPECT_TRUE(c->ok());
  rt::RunOptions o;
  o.sampleThreshold = 101;
  rt::RunResult r = rt::execute(c->module(), o);
  EXPECT_TRUE(r.ok);
  return r.log;
}

TEST(LogIo, RoundTripPreservesEverything) {
  sampling::RunLog log = makeLog();
  std::string text = sampling::serializeRunLog(log);
  sampling::RunLog back;
  ASSERT_TRUE(sampling::deserializeRunLog(text, back));
  EXPECT_EQ(back.sampleThreshold, log.sampleThreshold);
  EXPECT_EQ(back.numStreams, log.numStreams);
  EXPECT_EQ(back.totalCycles, log.totalCycles);
  ASSERT_EQ(back.samples.size(), log.samples.size());
  for (size_t i = 0; i < log.samples.size(); ++i) {
    EXPECT_EQ(back.samples[i].stream, log.samples[i].stream);
    EXPECT_EQ(back.samples[i].taskTag, log.samples[i].taskTag);
    EXPECT_EQ(back.samples[i].atCycle, log.samples[i].atCycle);
    EXPECT_EQ(back.samples[i].runtimeFrame, log.samples[i].runtimeFrame);
    EXPECT_EQ(back.samples[i].stack, log.samples[i].stack);
  }
  EXPECT_EQ(back.spawns.size(), log.spawns.size());
  EXPECT_EQ(back.allocBytesBySite, log.allocBytesBySite);
}

TEST(LogIo, FileRoundTrip) {
  sampling::RunLog log = makeLog();
  std::string path = ::testing::TempDir() + "/cb_log_io_test.cblog";
  ASSERT_TRUE(sampling::saveRunLog(log, path));
  sampling::RunLog back;
  ASSERT_TRUE(sampling::loadRunLog(path, back));
  EXPECT_EQ(back.samples.size(), log.samples.size());
  std::remove(path.c_str());
}

TEST(LogIo, RejectsGarbage) {
  sampling::RunLog out;
  EXPECT_FALSE(sampling::deserializeRunLog("", out));
  EXPECT_FALSE(sampling::deserializeRunLog("not a log\n", out));
  EXPECT_FALSE(sampling::deserializeRunLog("cblog 99 1 1 1\n", out));
  EXPECT_FALSE(sampling::deserializeRunLog("cblog 1 1 1 1\nX nonsense\n", out));
}

TEST(LogIo, ReloadedLogAttributesIdentically) {
  // Post-mortem over a reloaded log must equal post-mortem over the live
  // one (the paper's step 3 runs from the on-disk dataset).
  Profiler p;
  p.options().run.sampleThreshold = 101;
  ASSERT_TRUE(p.compileFile(assetProgram("example")) && p.analyze() && p.run() &&
              p.postProcess())
      << p.lastError();
  std::string text = sampling::serializeRunLog(p.runResult()->log);
  sampling::RunLog back;
  ASSERT_TRUE(sampling::deserializeRunLog(text, back));
  auto instances = pm::consolidate(p.compilation()->module(), back);
  pm::BlameReport report = pm::attribute(*p.moduleBlame(), instances);
  ASSERT_EQ(report.rows.size(), p.blameReport()->rows.size());
  for (size_t i = 0; i < report.rows.size(); ++i) {
    EXPECT_EQ(report.rows[i].name, p.blameReport()->rows[i].name);
    EXPECT_EQ(report.rows[i].sampleCount, p.blameReport()->rows[i].sampleCount);
  }
}

// ---------------------------------------------------------------------------
// Property suite: random logs round-trip through the serializer unchanged.
// ---------------------------------------------------------------------------

void expectLogsEqual(const sampling::RunLog& a, const sampling::RunLog& b) {
  EXPECT_EQ(a.sampleThreshold, b.sampleThreshold);
  EXPECT_EQ(a.numStreams, b.numStreams);
  EXPECT_EQ(a.totalCycles, b.totalCycles);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].stream, b.samples[i].stream) << "sample " << i;
    EXPECT_EQ(a.samples[i].taskTag, b.samples[i].taskTag) << "sample " << i;
    EXPECT_EQ(a.samples[i].atCycle, b.samples[i].atCycle) << "sample " << i;
    EXPECT_EQ(a.samples[i].runtimeFrame, b.samples[i].runtimeFrame) << "sample " << i;
    EXPECT_EQ(a.samples[i].stack, b.samples[i].stack) << "sample " << i;
  }
  ASSERT_EQ(a.spawns.size(), b.spawns.size());
  for (const auto& [tag, rec] : a.spawns) {
    auto it = b.spawns.find(tag);
    ASSERT_NE(it, b.spawns.end()) << "tag " << tag;
    EXPECT_EQ(rec.parentTag, it->second.parentTag);
    EXPECT_EQ(rec.taskFn, it->second.taskFn);
    EXPECT_EQ(rec.spawnInstr, it->second.spawnInstr);
    EXPECT_EQ(rec.preSpawnStack, it->second.preSpawnStack);
  }
  EXPECT_EQ(a.allocBytesBySite, b.allocBytesBySite);
}

class PropertyLogIoRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertyLogIoRoundTrip, RandomLogsSurviveSerializeParse) {
  // Serialization needs no module: func/instr ids are opaque integers here.
  Rng rng(GetParam());
  auto randomStack = [&](size_t maxDepth) {
    std::vector<sampling::Frame> stack;
    size_t depth = rng.nextBounded(maxDepth + 1);
    for (size_t i = 0; i < depth; ++i) {
      sampling::Frame f;
      f.func = static_cast<ir::FuncId>(rng.nextBounded(1000));
      f.instr = static_cast<ir::InstrId>(rng.nextBounded(5000));
      stack.push_back(f);
    }
    return stack;
  };

  for (int trial = 0; trial < 16; ++trial) {
    sampling::RunLog log;
    log.sampleThreshold = rng.next();
    log.numStreams = static_cast<uint32_t>(rng.nextBounded(64));
    log.totalCycles = rng.next();

    // Deep spawn-tag chain: tag k parents tag k-1 (chain of length numTags).
    uint64_t numTags = rng.nextBounded(40);
    for (uint64_t tag = 1; tag <= numTags; ++tag) {
      sampling::SpawnRecord rec;
      rec.tag = tag;
      rec.parentTag = tag - 1;
      rec.taskFn = static_cast<ir::FuncId>(rng.nextBounded(1000));
      rec.spawnInstr = static_cast<ir::InstrId>(rng.nextBounded(5000));
      rec.preSpawnStack = randomStack(8);  // may be empty
      log.spawns.emplace(tag, std::move(rec));
    }

    uint64_t numSamples = rng.nextBounded(200);
    for (uint64_t i = 0; i < numSamples; ++i) {
      sampling::RawSample s;
      s.stream = static_cast<uint32_t>(rng.nextBounded(64));
      s.atCycle = rng.next();
      if (rng.nextBounded(5) == 0) {
        // Idle runtime-frame sample: empty stack by construction.
        s.runtimeFrame = static_cast<sampling::RuntimeFrameKind>(1 + rng.nextBounded(3));
      } else {
        s.taskTag = numTags ? rng.nextBounded(numTags + 1) : 0;
        s.stack = randomStack(10);  // empty-stack edge case included
      }
      log.samples.push_back(std::move(s));
    }

    uint64_t numSites = rng.nextBounded(20);
    for (uint64_t i = 0; i < numSites; ++i)
      log.allocBytesBySite[rng.next()] = rng.next();

    sampling::RunLog back;
    ASSERT_TRUE(sampling::deserializeRunLog(sampling::serializeRunLog(log), back))
        << "trial " << trial;
    expectLogsEqual(log, back);
  }
}

TEST_P(PropertyLogIoRoundTrip, SecondRoundTripIsAFixedPoint) {
  // parse(serialize(x)) is a fixed point: running the trip twice changes
  // nothing (spawn/alloc map iteration order may shuffle lines, but the
  // parsed structure must be stable).
  Rng rng(GetParam() ^ 0xABCDEFull);
  sampling::RunLog log;
  log.sampleThreshold = 101;
  log.numStreams = 4;
  for (uint64_t tag = 1; tag <= 12; ++tag) {
    sampling::SpawnRecord rec;
    rec.tag = tag;
    rec.parentTag = tag / 2;
    rec.preSpawnStack.push_back({static_cast<ir::FuncId>(rng.nextBounded(10)),
                                 static_cast<ir::InstrId>(rng.nextBounded(100))});
    log.spawns.emplace(tag, std::move(rec));
  }
  std::string once = sampling::serializeRunLog(log);
  sampling::RunLog back;
  ASSERT_TRUE(sampling::deserializeRunLog(once, back));
  std::string twice = sampling::serializeRunLog(back);
  sampling::RunLog back2;
  ASSERT_TRUE(sampling::deserializeRunLog(twice, back2));
  expectLogsEqual(back, back2);
}

TEST_P(PropertyLogIoRoundTrip, RandomLogsSurviveBinaryRoundTrip) {
  Rng rng(GetParam() ^ 0xB19A2Full);
  for (int trial = 0; trial < 16; ++trial) {
    sampling::RunLog log;
    log.sampleThreshold = rng.next();
    log.numStreams = static_cast<uint32_t>(rng.nextBounded(64));
    log.totalCycles = rng.next();
    uint64_t numSamples = rng.nextBounded(120);
    for (uint64_t i = 0; i < numSamples; ++i) {
      sampling::RawSample s;
      s.stream = static_cast<uint32_t>(rng.nextBounded(64));
      s.taskTag = rng.nextBounded(40);
      s.atCycle = rng.next();  // random order: deltas exercise negatives
      size_t depth = rng.nextBounded(10);
      for (size_t d = 0; d < depth; ++d)
        s.stack.push_back({static_cast<ir::FuncId>(rng.nextBounded(1000)),
                           static_cast<ir::InstrId>(rng.nextBounded(5000))});
      log.samples.push_back(std::move(s));
    }
    uint64_t numTags = rng.nextBounded(30);
    for (uint64_t tag = 1; tag <= numTags; ++tag) {
      sampling::SpawnRecord rec;
      rec.tag = tag * 3 + rng.nextBounded(2);  // non-contiguous tags
      rec.parentTag = rng.nextBounded(tag);
      rec.taskFn = static_cast<ir::FuncId>(rng.nextBounded(1000));
      rec.spawnInstr = static_cast<ir::InstrId>(rng.nextBounded(5000));
      uint64_t t = rec.tag;
      log.spawns.emplace(t, std::move(rec));
    }
    for (uint64_t i = 0, n = rng.nextBounded(20); i < n; ++i)
      log.allocBytesBySite[rng.next()] = rng.next();

    std::string bin = sampling::serializeRunLogBinary(log);
    sampling::RunLog back;
    ASSERT_TRUE(sampling::deserializeRunLog(bin, back)) << "trial " << trial;
    expectLogsEqual(log, back);
    // The binary encoding is a deterministic function of the contents:
    // re-serializing the parsed log reproduces the bytes exactly.
    EXPECT_EQ(sampling::serializeRunLogBinary(back), bin) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyLogIoRoundTrip,
                         ::testing::Values(7ull, 1234ull, 0xDEADBEEFull));

// ---------------------------------------------------------------------------
// Binary format: cross-format identity, auto-detection, rejection paths.
// ---------------------------------------------------------------------------

TEST(LogIoBinary, TextToBinaryToTextIsTheIdentity) {
  sampling::RunLog log = makeLog();
  // text -> parse -> binary -> parse: structurally identical to the source.
  std::string text = sampling::serializeRunLog(log);
  sampling::RunLog fromText;
  ASSERT_TRUE(sampling::deserializeRunLog(text, fromText));
  std::string bin = sampling::serializeRunLogBinary(fromText);
  sampling::RunLog fromBin;
  ASSERT_TRUE(sampling::deserializeRunLog(bin, fromBin));
  expectLogsEqual(fromText, fromBin);
  expectLogsEqual(log, fromBin);
  // And the regenerated text parses back to the same structure again.
  sampling::RunLog again;
  ASSERT_TRUE(sampling::deserializeRunLog(sampling::serializeRunLog(fromBin), again));
  expectLogsEqual(fromBin, again);
}

TEST(LogIoBinary, FileRoundTripAutoDetects) {
  sampling::RunLog log = makeLog();
  std::string path = ::testing::TempDir() + "/cb_log_io_test_bin.cblog";
  ASSERT_TRUE(sampling::saveRunLog(log, path, sampling::RunLogFormat::Binary));
  sampling::RunLog back;
  ASSERT_TRUE(sampling::loadRunLog(path, back));  // no format hint needed
  expectLogsEqual(log, back);
  std::remove(path.c_str());
}

TEST(LogIoBinary, RejectsTruncation) {
  sampling::RunLog log = makeLog();
  std::string bin = sampling::serializeRunLogBinary(log);
  ASSERT_GT(bin.size(), 16u);
  sampling::RunLog out;
  // Every strict prefix is malformed: record counts are declared up front,
  // so a clean cut mid-stream still leaves missing records.
  for (size_t len : {size_t{0}, size_t{3}, size_t{4}, size_t{5}, size_t{8}, bin.size() / 4,
                     bin.size() / 2, bin.size() - 1})
    EXPECT_FALSE(sampling::deserializeRunLog(bin.substr(0, len), out)) << "prefix " << len;
  // Trailing garbage after a well-formed stream is rejected too.
  EXPECT_FALSE(sampling::deserializeRunLog(bin + "x", out));
  EXPECT_TRUE(sampling::deserializeRunLog(bin, out));
}

TEST(LogIoBinary, RejectsVersionMismatchAndCorruptMagic) {
  sampling::RunLog log = makeLog();
  std::string bin = sampling::serializeRunLogBinary(log);
  sampling::RunLog out;
  std::string wrongVersion = bin;
  wrongVersion[4] = 0x7F;  // unsupported future version
  EXPECT_FALSE(sampling::deserializeRunLog(wrongVersion, out));
  std::string wrongMagic = bin;
  wrongMagic[1] = 'X';  // no longer binary; not valid text either
  EXPECT_FALSE(sampling::deserializeRunLog(wrongMagic, out));
}

TEST(LogIoBinary, CorruptedBytesNeverCrash) {
  // Flipped bytes may decode to a different (valid) log or be rejected —
  // either way the parser must stay in-bounds and terminate.
  sampling::RunLog log = makeLog();
  std::string bin = sampling::serializeRunLogBinary(log);
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = bin;
    size_t pos = 5 + rng.nextBounded(mutated.size() - 5);  // keep magic+version
    mutated[pos] = static_cast<char>(rng.nextBounded(256));
    sampling::RunLog out;
    sampling::deserializeRunLog(mutated, out);  // must not hang or fault
  }
}

/// The acceptance gate: on each paper benchmark, the binary log is lossless
/// against the text format and strictly smaller on disk.
class PropertyBinaryLogCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(PropertyBinaryLogCorpus, LosslessAndSmallerThanText) {
  Profiler p;
  p.options().run.sampleThreshold = 997;
  ASSERT_TRUE(p.compileFile(assetProgram(GetParam())) && p.analyze() && p.run())
      << p.lastError();
  const sampling::RunLog& log = p.runResult()->log;
  ASSERT_FALSE(log.samples.empty());

  std::string text = sampling::serializeRunLog(log);
  std::string bin = sampling::serializeRunLogBinary(log);
  sampling::RunLog fromText, fromBin;
  ASSERT_TRUE(sampling::deserializeRunLog(text, fromText));
  ASSERT_TRUE(sampling::deserializeRunLog(bin, fromBin));
  expectLogsEqual(fromText, fromBin);
  expectLogsEqual(log, fromBin);
  EXPECT_LT(bin.size(), text.size())
      << GetParam() << ": binary " << bin.size() << "B vs text " << text.size() << "B";
}

INSTANTIATE_TEST_SUITE_P(Programs, PropertyBinaryLogCorpus,
                         ::testing::Values("minimd", "clomp", "lulesh"));

TEST(SelectWhen, LowersAndRuns) {
  EXPECT_EQ(test::runOutput(R"(proc label(x: int): int {
  var out = 0;
  select x {
    when 1, 2 { out = 10; }
    when 3 { out = 30; }
    otherwise { out = 99; }
  }
  return out;
}
proc main() { writeln(label(1), label(2), label(3), label(7)); }
)"),
            "10 10 30 99\n");
}

TEST(SelectWhen, ImplicitBlameFromSelector) {
  // §IV.A: select-when creates implicit transfer like if: variables written
  // in when-arms take the select line into their blame sets.
  Profiler p = test::profileSource(R"(proc main() {
  var x = 2;
  var out = 0;
  select x {
    when 2 { out = 5; }
    otherwise { out = 1; }
  }
  writeln(out);
}
)");
  auto lines = test::blameLinesOf(p, "main", "out", 1, 9);
  EXPECT_TRUE(lines.count(4) || lines.count(5)) << "select/when control lines must blame out";
}

}  // namespace
}  // namespace cb
