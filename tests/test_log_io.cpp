// Tests of run-log serialization (the monitor's on-disk dataset).
#include <gtest/gtest.h>

#include <cstdio>

#include "postmortem/attribution.h"
#include "postmortem/instance.h"
#include "sampling/log_io.h"
#include "test_util.h"

namespace cb {
namespace {

sampling::RunLog makeLog() {
  auto c = fe::Compilation::fromString(
      "t.chpl",
      "const D = {0..#64};\nvar A: [D] real;\nproc main() { forall i in D { var t = 0.0; for j "
      "in 0..#30 { t += i * j; } A[i] = t; } }");
  EXPECT_TRUE(c->ok());
  rt::RunOptions o;
  o.sampleThreshold = 101;
  rt::RunResult r = rt::execute(c->module(), o);
  EXPECT_TRUE(r.ok);
  return r.log;
}

TEST(LogIo, RoundTripPreservesEverything) {
  sampling::RunLog log = makeLog();
  std::string text = sampling::serializeRunLog(log);
  sampling::RunLog back;
  ASSERT_TRUE(sampling::deserializeRunLog(text, back));
  EXPECT_EQ(back.sampleThreshold, log.sampleThreshold);
  EXPECT_EQ(back.numStreams, log.numStreams);
  EXPECT_EQ(back.totalCycles, log.totalCycles);
  ASSERT_EQ(back.samples.size(), log.samples.size());
  for (size_t i = 0; i < log.samples.size(); ++i) {
    EXPECT_EQ(back.samples[i].stream, log.samples[i].stream);
    EXPECT_EQ(back.samples[i].taskTag, log.samples[i].taskTag);
    EXPECT_EQ(back.samples[i].atCycle, log.samples[i].atCycle);
    EXPECT_EQ(back.samples[i].runtimeFrame, log.samples[i].runtimeFrame);
    EXPECT_EQ(back.samples[i].stack, log.samples[i].stack);
  }
  EXPECT_EQ(back.spawns.size(), log.spawns.size());
  EXPECT_EQ(back.allocBytesBySite, log.allocBytesBySite);
}

TEST(LogIo, FileRoundTrip) {
  sampling::RunLog log = makeLog();
  std::string path = ::testing::TempDir() + "/cb_log_io_test.cblog";
  ASSERT_TRUE(sampling::saveRunLog(log, path));
  sampling::RunLog back;
  ASSERT_TRUE(sampling::loadRunLog(path, back));
  EXPECT_EQ(back.samples.size(), log.samples.size());
  std::remove(path.c_str());
}

TEST(LogIo, RejectsGarbage) {
  sampling::RunLog out;
  EXPECT_FALSE(sampling::deserializeRunLog("", out));
  EXPECT_FALSE(sampling::deserializeRunLog("not a log\n", out));
  EXPECT_FALSE(sampling::deserializeRunLog("cblog 99 1 1 1\n", out));
  EXPECT_FALSE(sampling::deserializeRunLog("cblog 1 1 1 1\nX nonsense\n", out));
}

TEST(LogIo, ReloadedLogAttributesIdentically) {
  // Post-mortem over a reloaded log must equal post-mortem over the live
  // one (the paper's step 3 runs from the on-disk dataset).
  Profiler p;
  p.options().run.sampleThreshold = 101;
  ASSERT_TRUE(p.compileFile(assetProgram("example")) && p.analyze() && p.run() &&
              p.postProcess())
      << p.lastError();
  std::string text = sampling::serializeRunLog(p.runResult()->log);
  sampling::RunLog back;
  ASSERT_TRUE(sampling::deserializeRunLog(text, back));
  auto instances = pm::consolidate(p.compilation()->module(), back);
  pm::BlameReport report = pm::attribute(*p.moduleBlame(), instances);
  ASSERT_EQ(report.rows.size(), p.blameReport()->rows.size());
  for (size_t i = 0; i < report.rows.size(); ++i) {
    EXPECT_EQ(report.rows[i].name, p.blameReport()->rows[i].name);
    EXPECT_EQ(report.rows[i].sampleCount, p.blameReport()->rows[i].sampleCount);
  }
}

TEST(SelectWhen, LowersAndRuns) {
  EXPECT_EQ(test::runOutput(R"(proc label(x: int): int {
  var out = 0;
  select x {
    when 1, 2 { out = 10; }
    when 3 { out = 30; }
    otherwise { out = 99; }
  }
  return out;
}
proc main() { writeln(label(1), label(2), label(3), label(7)); }
)"),
            "10 10 30 99\n");
}

TEST(SelectWhen, ImplicitBlameFromSelector) {
  // §IV.A: select-when creates implicit transfer like if: variables written
  // in when-arms take the select line into their blame sets.
  Profiler p = test::profileSource(R"(proc main() {
  var x = 2;
  var out = 0;
  select x {
    when 2 { out = 5; }
    otherwise { out = 1; }
  }
  writeln(out);
}
)");
  auto lines = test::blameLinesOf(p, "main", "out", 1, 9);
  EXPECT_TRUE(lines.count(4) || lines.count(5)) << "select/when control lines must blame out";
}

}  // namespace
}  // namespace cb
