// Causal what-if profiler (analysis/causal.h) + --diagnose rule engine
// (analysis/diagnose.h):
//
//  - Differential oracle wall: for every corpus program and k in {2, 4},
//    the schedule-replay prediction for the top blamed variable equals the
//    ground-truth re-run with rt::RunOptions::causalScale dividing that
//    variable's charges by k — cycle-for-cycle, on both engines and every
//    replay width.
//  - Span audit: recorded task spans tile [0, totalCycles], per-span site
//    splits sum to the span duration, and the reconstructed timeline is
//    invariant under engine choice, replay width and sample order.
//  - Critical-path properties: CP <= total (== total for serial programs),
//    predictions monotone in k, bounded below by T/k and by the integer
//    Amdahl bound T'*num >= T*num - A*(num - den).
//  - Fuzzed PGAS programs flow through the causal layer without crashing
//    and still satisfy the oracle equality.
//  - Golden --diagnose fixtures for the showcase programs, plus baseline
//    regression detection (the `--diagnose-baseline FILE` exit-4 path).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "analysis/causal.h"
#include "analysis/diagnose.h"
#include "cb_config.h"
#include "support/rng.h"
#include "test_util.h"

namespace cb {
namespace {

const char* kCorpus[] = {"clomp",  "clomp_opt",     "example",        "ig_agg",
                         "ig_naive", "lulesh",      "minimd",         "minimd_badloc",
                         "minimd_blockloc", "minimd_opt", "weakscale"};

/// Full pipeline on a corpus program with per-site tracking on, asserting
/// success. The returned Profiler owns every artefact the causal layer
/// needs. A dense sample threshold keeps attribution populated even for the
/// smallest corpus programs; `sampleThreshold = 0` keeps the CLI default
/// (the golden fixtures must match `cb --diagnose` byte-for-byte).
Profiler profileCorpus(const std::string& program, uint32_t numLocales = 1,
                       uint64_t sampleThreshold = 997) {
  Profiler p;
  p.options().run.trackCausalSites = true;
  p.options().run.numLocales = numLocales;
  if (sampleThreshold != 0) p.options().run.sampleThreshold = sampleThreshold;
  EXPECT_TRUE(p.profileFile(assetProgram(program))) << p.lastError();
  return p;
}

/// Blame-ranked variable -> site-set rows for a finished profile.
std::vector<pm::VariableSiteSet> siteRows(const Profiler& p) {
  return pm::attributionSites(*p.moduleBlame(), *p.instances(), p.options().attribution);
}

/// Ground-truth re-run: the same module under the same options with the
/// given site set's charges scaled by kFactors[factorIdx].
uint64_t rerunScaled(const Profiler& p, const std::vector<uint64_t>& sites, size_t factorIdx,
                     bool referenceInterp, uint32_t replayThreads) {
  rt::RunOptions o = p.options().run;
  o.referenceInterp = referenceInterp;
  o.replayThreads = replayThreads;
  o.causalScale.sites = sites;
  o.causalScale.num = an::causal::kFactors[factorIdx].num;
  o.causalScale.den = an::causal::kFactors[factorIdx].den;
  rt::RunResult r = rt::execute(p.compilation()->module(), o);
  EXPECT_TRUE(r.ok) << r.error;
  return r.totalCycles;
}

// ---------------------------------------------------------------------------
// Differential oracle wall: predicted == re-measured on the whole corpus.
// The prediction replays the recorded schedule arithmetically; the re-run
// actually executes with the scaled cost model. Corpus control flow never
// reads clock(), so the two must agree exactly — any drift is a bug in the
// span emission, the per-charge rounding, or the replay itself.
// ---------------------------------------------------------------------------

class CausalOracle : public ::testing::TestWithParam<const char*> {};

TEST_P(CausalOracle, PredictionMatchesGroundTruthRerun) {
  Profiler p = profileCorpus(GetParam());
  const sampling::RunLog& log = p.runResult()->log;
  an::causal::Timeline tl = an::causal::buildTimeline(log);
  ASSERT_TRUE(tl.ok) << tl.error;
  ASSERT_TRUE(tl.hasSites);

  std::vector<pm::VariableSiteSet> rows = siteRows(p);
  std::vector<uint64_t> sites;
  for (const pm::VariableSiteSet& r : rows)
    if (!r.sites.empty()) {
      sites = r.sites;
      break;
    }
  if (sites.empty()) {
    // Runs shorter than the sample threshold (the paper's Fig. 1 example)
    // attribute nothing; scale the hottest recorded site instead so the
    // differential still runs on every corpus program.
    uint64_t hot = 0;
    for (const sampling::TaskSpan& sp : log.taskSpans)
      for (const sampling::SiteCycles& sc : sp.sites)
        if (sc.raw > hot) hot = sc.raw, sites.assign(1, sc.site);
  }
  ASSERT_FALSE(sites.empty()) << "no charged sites for " << GetParam();

  for (size_t factorIdx : {size_t{1}, size_t{2}}) {  // k = 2, k = 4
    SCOPED_TRACE("factor " + an::causal::factorName(an::causal::kFactors[factorIdx]));
    uint64_t predicted = an::causal::predictTotal(log, tl, sites, factorIdx);
    EXPECT_LE(predicted, log.totalCycles);
    EXPECT_EQ(predicted, rerunScaled(p, sites, factorIdx, /*ref=*/true, 0));
    for (uint32_t w : {1u, 2u, 4u})
      EXPECT_EQ(predicted, rerunScaled(p, sites, factorIdx, /*ref=*/false, w))
          << "replay width " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, CausalOracle, ::testing::ValuesIn(kCorpus));

TEST(CausalOracle, MultiLocaleRemoteChargesScaleExactly) {
  // Under 4 simulated locales the top variable's charges include remote
  // GET/PUT costs; those scale through the oracle identically to compute.
  Profiler p = profileCorpus("minimd_badloc", /*numLocales=*/4);
  const sampling::RunLog& log = p.runResult()->log;
  an::causal::Timeline tl = an::causal::buildTimeline(log);
  ASSERT_TRUE(tl.ok) << tl.error;
  std::vector<pm::VariableSiteSet> rows = siteRows(p);
  ASSERT_FALSE(rows.empty());
  ASSERT_FALSE(rows[0].sites.empty());
  for (size_t factorIdx : {size_t{1}, size_t{2}}) {
    uint64_t predicted = an::causal::predictTotal(log, tl, rows[0].sites, factorIdx);
    EXPECT_EQ(predicted, rerunScaled(p, rows[0].sites, factorIdx, true, 0));
    EXPECT_EQ(predicted, rerunScaled(p, rows[0].sites, factorIdx, false, 2));
  }
}

// ---------------------------------------------------------------------------
// Span audit (the per-stream clock / preSpawnStack gluing regression wall):
// spans tile the run exactly, and where per-site splits exist they account
// for every cycle of their span.
// ---------------------------------------------------------------------------

class CausalSpans : public ::testing::TestWithParam<const char*> {};

TEST_P(CausalSpans, SpansTileRunAndSiteSplitsSumToDurations) {
  Profiler p = profileCorpus(GetParam());
  const sampling::RunLog& log = p.runResult()->log;
  an::causal::Timeline tl = an::causal::buildTimeline(log);
  ASSERT_TRUE(tl.ok) << tl.error;

  // Tiling: serial segments + region spans cover [0, totalCycles].
  uint64_t covered = tl.serialCycles;
  for (const an::causal::Region& r : tl.regions) covered += r.duration();
  EXPECT_EQ(covered, log.totalCycles);

  // Every span with a site split accounts for exactly its duration; spans
  // without one are either nested (cycles accrue to the enclosing chunk) or
  // zero-length.
  for (const sampling::TaskSpan& sp : log.taskSpans) {
    if (sp.sites.empty()) continue;
    uint64_t raw = 0;
    for (const sampling::SiteCycles& sc : sp.sites) {
      raw += sc.raw;
      // Per-charge ceil scaling can only shrink, never below a quarter/etc.
      EXPECT_LE(sc.s125, sc.raw);
      EXPECT_LE(sc.s2, sc.s125);
      EXPECT_LE(sc.s4, sc.s2);
    }
    EXPECT_EQ(raw, sp.duration())
        << "span tag " << sp.tag << " chunk " << sp.chunk << " leaks cycles";
  }

  // workCycles is the busy-cycle integral: serial + per-region chunk sums.
  uint64_t work = tl.serialCycles;
  for (const an::causal::Region& r : tl.regions) work += r.workCycles;
  EXPECT_EQ(work, tl.workCycles);
}

TEST_P(CausalSpans, TimelineInvariantAcrossEnginesAndReplayWidths) {
  Profiler p = profileCorpus(GetParam());
  const sampling::RunLog& base = p.runResult()->log;

  for (bool ref : {true, false}) {
    for (uint32_t w : {1u, 4u}) {
      if (ref && w != 1) continue;
      rt::RunOptions o = p.options().run;
      o.referenceInterp = ref;
      o.replayThreads = w;
      rt::RunResult r = rt::execute(p.compilation()->module(), o);
      ASSERT_TRUE(r.ok) << r.error;
      ASSERT_TRUE(sampling::identical(base, r.log))
          << sampling::firstDifference(base, r.log);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, CausalSpans, ::testing::ValuesIn(kCorpus));

// ---------------------------------------------------------------------------
// Critical-path and prediction properties.
// ---------------------------------------------------------------------------

class CausalProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(CausalProperty, CriticalPathBoundsAndFactorMonotonicity) {
  Profiler p = profileCorpus(GetParam());
  const sampling::RunLog& log = p.runResult()->log;

  std::vector<pm::VariableSiteSet> rows = siteRows(p);
  std::vector<an::causal::VariableSites> vars;
  for (const pm::VariableSiteSet& r : rows)
    vars.push_back({r.context, r.name, r.type, r.sampleCount, r.sites});
  an::causal::CausalReport rep = an::causal::analyze(log, vars);
  ASSERT_TRUE(rep.ok) << rep.error;

  // Work/span shape: CP <= total <= work, parallelism >= 1.
  EXPECT_LE(rep.criticalPath, rep.totalCycles);
  EXPECT_GE(rep.workCycles, rep.criticalPath);
  EXPECT_GE(rep.parallelism, 1.0 - 1e-12);
  if (rep.regions.empty()) {
    EXPECT_EQ(rep.criticalPath, rep.totalCycles);
    EXPECT_EQ(rep.workCycles, rep.totalCycles);
  }

  uint64_t total = rep.totalCycles;
  for (const an::causal::VariablePrediction& vp : rep.predictions) {
    SCOPED_TRACE(vp.name);
    ASSERT_EQ(vp.factors.size(), an::causal::kNumFactors);
    // Monotone: a bigger speedup factor can only shorten the run further.
    EXPECT_LE(vp.factors[3].predictedCycles, vp.factors[2].predictedCycles);
    EXPECT_LE(vp.factors[2].predictedCycles, vp.factors[1].predictedCycles);
    EXPECT_LE(vp.factors[1].predictedCycles, vp.factors[0].predictedCycles);
    EXPECT_LE(vp.factors[0].predictedCycles, total);
    for (size_t i = 0; i < an::causal::kNumFactors; ++i) {
      const an::causal::Factor f = an::causal::kFactors[i];
      uint64_t predicted = vp.factors[i].predictedCycles;
      if (!f.infinite()) {
        // Whole-program speedup never exceeds the per-site factor k:
        // T' >= T/k, in exact integers T'*num >= T*den.
        EXPECT_GE(predicted * f.num, total * f.den);
        // Integer Amdahl bound with A = the variable's attributed cycles
        // (the f = A/T serial-fraction form, cleared of divisions):
        // T'*num >= T*num - A*(num - den).
        EXPECT_GE(predicted * f.num + vp.attributedCycles * (f.num - f.den),
                  total * f.num);
      }
      // Even at k = inf the run cannot drop below its unattributed cycles.
      EXPECT_GE(predicted + vp.attributedCycles, total);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, CausalProperty, ::testing::ValuesIn(kCorpus));

TEST(CausalProperty, SerialProgramCriticalPathEqualsTotal) {
  Profiler p;
  p.options().run.trackCausalSites = true;
  ASSERT_TRUE(p.profileString("serial.chpl",
                              "var a: [{0..#64}] real;\n"
                              "proc main() {\n"
                              "  for i in 0..#64 { a[i] = i * 1.5; }\n"
                              "  var s = 0.0;\n"
                              "  for i in 0..#64 { s = s + a[i]; }\n"
                              "  writeln(s);\n"
                              "}\n"))
      << p.lastError();
  an::causal::Timeline tl = an::causal::buildTimeline(p.runResult()->log);
  ASSERT_TRUE(tl.ok) << tl.error;
  EXPECT_TRUE(tl.regions.empty());
  EXPECT_EQ(tl.criticalPath, tl.totalCycles);
  EXPECT_EQ(tl.workCycles, tl.totalCycles);
  EXPECT_DOUBLE_EQ(tl.parallelism(), 1.0);
}

TEST(CausalProperty, TimelineInvariantUnderSamplePermutation) {
  // The timeline is a pure function of the task spans; the sample stream
  // (however ordered) must not influence it.
  Profiler p = profileCorpus("minimd");
  sampling::RunLog shuffled = p.runResult()->log;
  Rng rng(0xC0FFEE);
  for (size_t i = shuffled.samples.size(); i > 1; --i)
    std::swap(shuffled.samples[i - 1], shuffled.samples[rng.nextBounded(i)]);

  an::causal::Timeline a = an::causal::buildTimeline(p.runResult()->log);
  an::causal::Timeline b = an::causal::buildTimeline(shuffled);
  ASSERT_TRUE(a.ok && b.ok) << a.error << b.error;
  EXPECT_EQ(a.criticalPath, b.criticalPath);
  EXPECT_EQ(a.workCycles, b.workCycles);
  EXPECT_EQ(a.serialCycles, b.serialCycles);
  EXPECT_EQ(a.regions.size(), b.regions.size());

  std::vector<pm::VariableSiteSet> rows = siteRows(p);
  ASSERT_FALSE(rows.empty());
  for (size_t f = 0; f < an::causal::kNumFactors; ++f)
    EXPECT_EQ(an::causal::predictTotal(p.runResult()->log, a, rows[0].sites, f),
              an::causal::predictTotal(shuffled, b, rows[0].sites, f));
}

TEST(CausalProperty, PredictionsInvariantUnderPostmortemWorkerCount) {
  an::causal::CausalReport reports[2];
  uint32_t workers[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    Profiler p;
    p.options().run.trackCausalSites = true;
    p.options().postmortem.workers = workers[i];
    ASSERT_TRUE(p.profileFile(assetProgram("minimd_badloc"))) << p.lastError();
    reports[i] = p.causalReport();
    ASSERT_TRUE(reports[i].ok) << reports[i].error;
  }
  ASSERT_EQ(reports[0].predictions.size(), reports[1].predictions.size());
  EXPECT_FALSE(reports[0].predictions.empty());
  for (size_t v = 0; v < reports[0].predictions.size(); ++v) {
    EXPECT_EQ(reports[0].predictions[v].name, reports[1].predictions[v].name);
    EXPECT_EQ(reports[0].predictions[v].attributedCycles,
              reports[1].predictions[v].attributedCycles);
    for (size_t f = 0; f < an::causal::kNumFactors; ++f)
      EXPECT_EQ(reports[0].predictions[v].factors[f].predictedCycles,
                reports[1].predictions[v].factors[f].predictedCycles);
  }
}

// The variable→site bridge has two implementations: a fresh site-collection
// pass over every sample, and the memo-derived fast path served from an
// AttributionCache primed by attribute(). They must be row-for-row
// identical — same keys, same counts, same sorted site sets — or the
// what-if table silently drifts depending on which path the profiler took.
TEST(CausalProperty, CachedSiteBridgeMatchesFreshCollection) {
  for (const char* program : {"lulesh", "minimd_badloc", "clomp"}) {
    Profiler p = profileCorpus(program);
    pm::AttributionCache cache;
    pm::BlameReport cached =
        pm::attribute(*p.moduleBlame(), *p.instances(), p.options().attribution, &cache);
    pm::BlameReport fresh =
        pm::attribute(*p.moduleBlame(), *p.instances(), p.options().attribution);
    EXPECT_EQ(cached, fresh) << program << ": priming the cache changed the report";
    std::vector<pm::VariableSiteSet> viaMemo = pm::attributionSites(
        *p.moduleBlame(), *p.instances(), p.options().attribution, &cache);
    std::vector<pm::VariableSiteSet> viaRun =
        pm::attributionSites(*p.moduleBlame(), *p.instances(), p.options().attribution);
    EXPECT_EQ(viaMemo, viaRun) << program << ": memo-derived sites diverge from fresh pass";
    EXPECT_FALSE(viaMemo.empty()) << program;
    // A cleared cache must fall back to the fresh pass, not serve stale state.
    cache.clear();
    EXPECT_EQ(pm::attributionSites(*p.moduleBlame(), *p.instances(), p.options().attribution,
                                   &cache),
              viaRun)
        << program << ": cleared cache did not fall back";
  }
}

TEST(CausalProperty, MalformedSpanStreamsAreRejectedNotCrashed) {
  Profiler p = profileCorpus("minimd");
  const sampling::RunLog& good = p.runResult()->log;
  ASSERT_FALSE(good.taskSpans.empty());

  {  // Truncated: last span missing.
    sampling::RunLog bad = good;
    bad.taskSpans.pop_back();
    an::causal::Timeline tl = an::causal::buildTimeline(bad);
    EXPECT_FALSE(tl.ok);
    EXPECT_FALSE(tl.error.empty());
  }
  {  // A span pointing at a spawn tag the registry never recorded.
    sampling::RunLog bad = good;
    for (sampling::TaskSpan& sp : bad.taskSpans)
      if (sp.tag != 0) {
        sp.tag = 0xDEAD0000DEAD;
        break;
      }
    EXPECT_FALSE(an::causal::buildTimeline(bad).ok);
  }
  {  // A torn per-stream chain: a chunk span shifted off its clock.
    sampling::RunLog bad = good;
    for (sampling::TaskSpan& sp : bad.taskSpans)
      if (sp.tag != 0) {
        sp.startCycle += 1;
        break;
      }
    EXPECT_FALSE(an::causal::buildTimeline(bad).ok);
  }
}

// ---------------------------------------------------------------------------
// Fuzzed PGAS programs through the causal layer: reconstruction always
// succeeds, bounds hold, and the oracle equality survives aggregators,
// `on` blocks and nested parallelism.
// ---------------------------------------------------------------------------

std::string fuzzCausalProgram(uint64_t seed) {
  Rng rng(seed);
  auto pick = [&](uint32_t n) { return static_cast<uint32_t>(rng.nextBounded(n)); };
  auto num = [](uint64_t v) { return std::to_string(v); };
  uint32_t n = 8 + pick(24);
  const char* dists[] = {"", " dmapped Block", " dmapped Cyclic"};
  std::string s;
  s += "const D = {0..#" + num(n) + "}" + dists[pick(3)] + ";\n";
  s += "var a: [D] real;\nvar b: [D] real;\n";
  s += "var g: [{0..#" + num(n) + "}] real;\n";
  s += "proc main() {\n";
  s += "  forall i in D { a[i] = i * 1.5; b[i] = i + 0.25; }\n";
  uint32_t stmts = 1 + pick(3);
  for (uint32_t k = 0; k < stmts; ++k) {
    switch (pick(5)) {
      case 0:
        s += "  forall i in D { b[i] = b[i] + a[i] * 0.5; }\n";
        break;
      case 1:
        s += "  coforall t in 0..#" + num(1 + pick(4)) +
             " { for i in 0..#" + num(n / 2) + " { a[i] = a[i] + 0.25; } }\n";
        break;
      case 2:
        s += "  on Locales[" + num(pick(3)) + "] { for i in 0..#" + num(n) +
             " { b[i] = b[i] + a[i]; } }\n";
        break;
      case 3:
        s += "  forall i in D with (var ga = new SrcAggregator(real)) { "
             "ga.copy(g[i], a[i]); }\n";
        break;
      default:
        s += "  for i in 0..#" + num(n) + " { g[i] = g[i] + b[i] * 0.125; }\n";
        break;
    }
  }
  s += "  var chk = 0.0;\n";
  s += "  for i in 0..#" + num(n) + " { chk = chk + a[i] + b[i] + g[i]; }\n";
  s += "  writeln(\"chk:\", chk);\n";
  s += "}\n";
  return s;
}

class CausalFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CausalFuzz, FifteenProgramsReconstructAndSatisfyOracle) {
  for (uint64_t k = 0; k < 15; ++k) {
    uint64_t seed = GetParam() * 15 + k;
    std::string src = fuzzCausalProgram(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto c = fe::Compilation::fromString("fuzz.chpl", src, {});
    ASSERT_TRUE(c->ok()) << c->diags().renderAll() << "\n" << src;

    Rng rng(seed ^ 0xFACADE);
    rt::RunOptions o;
    o.sampleThreshold = 997;
    o.numWorkers = 1 + static_cast<uint32_t>(rng.nextBounded(4));
    o.numLocales = 1 + static_cast<uint32_t>(rng.nextBounded(4));
    o.localeId = static_cast<uint32_t>(rng.nextBounded(o.numLocales));
    o.trackCausalSites = true;
    rt::RunResult r = rt::execute(c->module(), o);
    ASSERT_TRUE(r.ok) << r.error << "\n" << src;

    an::causal::Timeline tl = an::causal::buildTimeline(r.log);
    ASSERT_TRUE(tl.ok) << tl.error << "\n" << src;
    EXPECT_LE(tl.criticalPath, tl.totalCycles);
    EXPECT_GE(tl.workCycles, tl.criticalPath);
    EXPECT_NO_FATAL_FAILURE(an::causal::analyze(r.log, {}));

    // Mini-oracle: speed up the single hottest recorded site 2x and check
    // the replay against a real scaled re-run.
    uint64_t hotSite = 0, hotCycles = 0;
    for (const sampling::TaskSpan& sp : r.log.taskSpans)
      for (const sampling::SiteCycles& sc : sp.sites)
        if (sc.raw > hotCycles) hotCycles = sc.raw, hotSite = sc.site;
    if (hotCycles == 0) continue;
    std::vector<uint64_t> sites = {hotSite};
    uint64_t predicted = an::causal::predictTotal(r.log, tl, sites, /*k=2*/ 1);
    rt::RunOptions scaled = o;
    scaled.causalScale.sites = sites;
    scaled.causalScale.num = 2;
    scaled.causalScale.den = 1;
    rt::RunResult rs = rt::execute(c->module(), scaled);
    ASSERT_TRUE(rs.ok) << rs.error << "\n" << src;
    EXPECT_EQ(predicted, rs.totalCycles) << src;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, CausalFuzz, ::testing::Range<uint64_t>(0, 3));

// ---------------------------------------------------------------------------
// Diagnose rule engine.
// ---------------------------------------------------------------------------

TEST(CausalDiagnose, SingleTaskRegionFlagsSerializedCriticalPath) {
  Profiler p;
  p.options().run.trackCausalSites = true;
  p.options().run.numWorkers = 4;
  ASSERT_TRUE(p.profileString("serialized.chpl",
                              "var a: [{0..#400}] real;\n"
                              "proc main() {\n"
                              "  coforall t in 0..#1 {\n"
                              "    for i in 0..#400 { a[i] = a[i] + i * 0.5; }\n"
                              "  }\n"
                              "  writeln(a[5]);\n"
                              "}\n"))
      << p.lastError();
  std::string text = p.diagnoseText();
  EXPECT_NE(text.find("serialized-region"), std::string::npos) << text;
  EXPECT_NE(text.find("critical path 1 task wide"), std::string::npos) << text;
}

TEST(CausalDiagnose, BadLocalityProgramSuggestsBlockRedistribution) {
  // The acceptance criterion: `cb --diagnose minimd_badloc.chpl` names the
  // Cyclic mis-distribution and suggests `dmapped Block`.
  Profiler p = profileCorpus("minimd_badloc", /*numLocales=*/4);
  std::string text = p.diagnoseText();
  EXPECT_NE(text.find("distribution-mismatch"), std::string::npos) << text;
  EXPECT_NE(text.find("dmapped Block"), std::string::npos) << text;
  EXPECT_NE(text.find("metric total_cycles "), std::string::npos) << text;
}

TEST(CausalDiagnose, BaselineComparatorFlagsInjectedSlowdowns) {
  std::string base =
      "metric total_cycles 1000000\n"
      "metric critical_path_cycles 800000\n"
      "metric parallelism 3.5\n"
      "metric naive_remote_ops 200\n";

  // Unchanged metrics: clean.
  EXPECT_TRUE(an::diag::compareBaselineText(base, base).empty());

  // 20% more cycles and halved parallelism: both flagged, nothing else.
  std::string slow =
      "metric total_cycles 1200000\n"
      "metric critical_path_cycles 820000\n"  // +2.5%, inside the 10% band
      "metric parallelism 1.75\n"
      "metric naive_remote_ops 200\n";
  std::vector<an::diag::Regression> regs = an::diag::compareBaselineText(base, slow);
  ASSERT_EQ(regs.size(), 2u);
  EXPECT_EQ(regs[0].metric, "total_cycles");
  EXPECT_NEAR(regs[0].worsened, 0.20, 1e-9);
  EXPECT_EQ(regs[1].metric, "parallelism");  // lower is worse for parallelism
  EXPECT_NEAR(regs[1].worsened, 0.50, 1e-9);

  // Improvements never flag; metrics on only one side are ignored.
  std::string fast =
      "metric total_cycles 500000\n"
      "metric parallelism 7.0\n"
      "metric findings 3\n";
  EXPECT_TRUE(an::diag::compareBaselineText(base, fast).empty());
}

TEST(CausalDiagnose, RegressionFixtureDetectsCurrentRunAsSlower) {
  // The injected-slowdown fixture: a baseline recorded on an impossibly
  // fast machine. Any real profile must flag total_cycles against it —
  // the CLI then exits 4 (see src/service/job.cpp --diagnose-baseline).
  std::ifstream in(std::string(kGoldenDir) + "/diagnose_regression_baseline.txt");
  ASSERT_TRUE(in) << "missing fixture diagnose_regression_baseline.txt";
  std::stringstream base;
  base << in.rdbuf();

  Profiler p = profileCorpus("minimd_badloc", /*numLocales=*/4);
  std::vector<an::diag::Regression> regs =
      an::diag::compareBaselineText(base.str(), p.diagnoseText());
  ASSERT_FALSE(regs.empty());
  EXPECT_EQ(regs[0].metric, "total_cycles");
  EXPECT_GT(regs[0].worsened, 0.10);
}

// ---------------------------------------------------------------------------
// Golden --diagnose fixtures: the full report text of the showcase
// programs, pinned byte-for-byte under tests/golden/ with the same
// options `cb --diagnose <prog>` uses (4 modeled locales, per-site
// tracking). Regenerate with `cb_tests --update-golden`.
// ---------------------------------------------------------------------------

std::string diagnoseGoldenPath(const std::string& program) {
  return std::string(kGoldenDir) + "/" + program + "_diagnose.txt";
}

class DiagnoseGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(DiagnoseGolden, DiagnoseTextMatchesFixture) {
  Profiler p = profileCorpus(GetParam(), /*numLocales=*/4, /*sampleThreshold=*/0);
  std::string rendered = p.diagnoseText();
  std::string path = diagnoseGoldenPath(GetParam());
  if (test::g_updateGolden) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << rendered;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing fixture " << path << "; run `cb_tests --update-golden`";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(rendered, expected.str())
      << "golden diagnose mismatch for " << GetParam()
      << "; if intentional, regenerate with `cb_tests --update-golden`";
}

INSTANTIATE_TEST_SUITE_P(Programs, DiagnoseGolden,
                         ::testing::Values("minimd_badloc", "ig_naive", "lulesh"));

}  // namespace
}  // namespace cb
