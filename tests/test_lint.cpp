// Static locality & race lint (analysis/locality.h, `cb --lint`):
//
//  - Exact-parity properties: the concrete mirror's predicted comm counters
//    and locale-pair matrix equal the RunLog's, bit-for-bit, on the whole
//    program corpus and on fuzz-generated PGAS programs.
//  - Acceptance findings: minimd_badloc flags the Cyclic mis-distribution
//    with a `dmapped Block` suggestion, ig_naive gets missing-aggregator
//    findings, weakscale lints clean.
//  - Robustness: the linter never crashes — parser-recovered modules,
//    runtime-failing programs and step-budget exhaustion all produce a
//    partial report with `error`/`truncated` set.
//  - Race-fallback accounting: RunLog::raceFallbackRegions is pinned per
//    corpus program and invariant across replay widths.
//  - The static-vs-dynamic differential (rpt::lintView) stays quiet where
//    prediction matches measurement and flags attribution divergences.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "analysis/locality.h"
#include "cb_config.h"
#include "ir/verifier.h"
#include "report/views.h"
#include "sampling/sample.h"
#include "support/rng.h"
#include "test_util.h"

namespace cb {
namespace {

/// Runs the monitored runtime and the static mirror over the same module
/// with the same locale view, and asserts every exact-parity invariant:
/// naive GET/PUT counts, aggregated transfer counts, on-fork counts, and
/// the full locale-pair communication matrix.
void expectExactParity(const ir::Module& m, uint32_t numLocales, uint32_t localeId,
                       uint64_t rngSeed = 0x5eedULL) {
  rt::RunOptions o;
  o.sampleThreshold = 0;
  o.numLocales = numLocales;
  o.localeId = localeId;
  o.rngSeed = rngSeed;
  rt::RunResult r = rt::execute(m, o);
  ASSERT_TRUE(r.ok) << r.error;

  an::loc::Params lp;
  lp.numLocales = numLocales;
  lp.homeLocale = localeId;
  lp.rngSeed = rngSeed;
  an::loc::LintReport lint = an::loc::lint(m, lp);
  ASSERT_TRUE(lint.ok);
  EXPECT_TRUE(lint.error.empty()) << lint.error;
  EXPECT_FALSE(lint.truncated);

  EXPECT_EQ(lint.predictedGets, r.log.commGets);
  EXPECT_EQ(lint.predictedPuts, r.log.commPuts);
  EXPECT_EQ(lint.predictedAggGets, r.log.commAggGets);
  EXPECT_EQ(lint.predictedAggPuts, r.log.commAggPuts);
  EXPECT_EQ(lint.predictedOnForks, r.log.commOnForks);

  std::map<uint64_t, uint64_t> predictedMatrix;
  for (const an::loc::ArrayStats& a : lint.arrays)
    for (const auto& [key, count] : a.pairTransfers) predictedMatrix[key] += count;
  EXPECT_EQ(predictedMatrix, r.log.commMatrix);
}

const an::loc::Finding* findKind(const an::loc::LintReport& r, an::loc::FindingKind k,
                                 const std::string& variable = "") {
  for (const an::loc::Finding& f : r.findings)
    if (f.kind == k && (variable.empty() || f.variable == variable)) return &f;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Exact parity over the whole bundled corpus.
// ---------------------------------------------------------------------------

class LintCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(LintCorpus, PredictsCommCountersExactly) {
  Profiler p;
  ASSERT_TRUE(p.compileFile(assetProgram(GetParam()))) << p.lastError();
  expectExactParity(p.compilation()->module(), 4, 0);
}

TEST_P(LintCorpus, PredictsFromEveryHomeLocale) {
  Profiler p;
  ASSERT_TRUE(p.compileFile(assetProgram(GetParam()))) << p.lastError();
  expectExactParity(p.compilation()->module(), 4, 3);
  expectExactParity(p.compilation()->module(), 2, 1);
}

TEST_P(LintCorpus, SingleLocalePredictsNoComm) {
  Profiler p;
  ASSERT_TRUE(p.compileFile(assetProgram(GetParam()))) << p.lastError();
  an::loc::Params lp;
  lp.numLocales = 1;
  an::loc::LintReport r = an::loc::lint(p.compilation()->module(), lp);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.predictedGets, 0u);
  EXPECT_EQ(r.predictedPuts, 0u);
  EXPECT_EQ(r.predictedAggGets, 0u);
  EXPECT_EQ(r.predictedAggPuts, 0u);
}

TEST_P(LintCorpus, ViewRendersWithoutMeasuredProfile) {
  Profiler p;
  p.options().run.numLocales = 4;
  ASSERT_TRUE(p.compileFile(assetProgram(GetParam()))) << p.lastError();
  std::string v = p.lintText();
  EXPECT_NE(v.find("Lint — static locality & race analysis"), std::string::npos);
  EXPECT_NE(v.find("Predicted comm:"), std::string::npos);
  // Path independence: rendered locations are basenames, never absolute.
  EXPECT_EQ(v.find(std::string(kGoldenDir).substr(0, 5)), std::string::npos);
  EXPECT_EQ(v.find("/root"), std::string::npos);
  EXPECT_EQ(v.find("assets/"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Programs, LintCorpus,
                         ::testing::Values("example", "minimd", "minimd_opt",
                                           "minimd_blockloc", "minimd_badloc", "clomp",
                                           "clomp_opt", "lulesh", "weakscale", "ig_naive",
                                           "ig_agg"));

// ---------------------------------------------------------------------------
// Acceptance findings on the three showcase programs.
// ---------------------------------------------------------------------------

an::loc::LintReport lintAsset(const char* program, uint32_t numLocales = 4) {
  Profiler p;
  p.options().run.numLocales = numLocales;
  EXPECT_TRUE(p.compileFile(assetProgram(program))) << p.lastError();
  return p.lintReport();
}

TEST(Lint, BadlocFlagsCyclicMisdistribution) {
  an::loc::LintReport r = lintAsset("minimd_badloc");
  for (const char* var : {"Pos", "Force", "Vel"}) {
    const an::loc::Finding* f =
        findKind(r, an::loc::FindingKind::DistributionMismatch, var);
    ASSERT_NE(f, nullptr) << var << " has no mis-distribution finding";
    // >= 50% of accesses predicted remote, and the swap suggestion names Block.
    EXPECT_GE(f->predictedRemoteFraction, 0.5) << var;
    EXPECT_LT(f->counterfactualRemoteFraction, f->predictedRemoteFraction) << var;
    EXPECT_NE(f->message.find("dmapped Block"), std::string::npos) << f->message;
    EXPECT_NE(f->message.find("remote"), std::string::npos) << f->message;
  }
}

TEST(Lint, BlocklocTwinLintsWithoutMisdistribution) {
  // The well-distributed twin of minimd_badloc: same kernels, Block layout.
  an::loc::LintReport r = lintAsset("minimd_blockloc");
  EXPECT_EQ(findKind(r, an::loc::FindingKind::DistributionMismatch), nullptr);
}

TEST(Lint, IgNaiveSuggestsAggregators) {
  an::loc::LintReport r = lintAsset("ig_naive");
  const an::loc::Finding* put =
      findKind(r, an::loc::FindingKind::MissingAggregator, "ACyc");
  ASSERT_NE(put, nullptr);
  EXPECT_NE(put->message.find("DstAggregator"), std::string::npos) << put->message;
  bool src = false;
  for (const an::loc::Finding& f : r.findings)
    src |= f.message.find("SrcAggregator") != std::string::npos;
  EXPECT_TRUE(src) << "no SrcAggregator suggestion for the gather side";
}

TEST(Lint, IgAggTwinHasNoAggregatorFinding) {
  // Same kernels routed through Src/DstAggregator intents: the naive remote
  // traffic is gone, so the missing-aggregator finding must not fire.
  an::loc::LintReport r = lintAsset("ig_agg");
  EXPECT_EQ(findKind(r, an::loc::FindingKind::MissingAggregator), nullptr);
  uint64_t agg = 0;
  for (const an::loc::ArrayStats& a : r.arrays) agg += a.aggGets + a.aggPuts;
  EXPECT_GT(agg, 0u);
}

TEST(Lint, WeakscaleLintsClean) {
  an::loc::LintReport r = lintAsset("weakscale");
  EXPECT_TRUE(r.findings.empty());
}

TEST(Lint, IgNaiveScatterRegionsMayRace) {
  an::loc::LintReport r = lintAsset("ig_naive");
  size_t mayRace = 0, raceFree = 0;
  for (const an::loc::RegionReport& reg : r.regions) {
    EXPECT_TRUE(reg.executed);
    if (reg.verdict.raceFree) {
      ++raceFree;
    } else {
      ++mayRace;
      EXPECT_FALSE(reg.verdict.reason.empty());
    }
  }
  // Two gather foralls prove race-free, two rotated-scatter foralls do not.
  EXPECT_EQ(raceFree, 2u);
  EXPECT_EQ(mayRace, 2u);
  EXPECT_NE(findKind(r, an::loc::FindingKind::MayRaceRegion), nullptr);
}

// ---------------------------------------------------------------------------
// Robustness: the linter never crashes.
// ---------------------------------------------------------------------------

TEST(Lint, RuntimeFailureYieldsPartialReport) {
  // Division by zero aborts the mirror mid-run; the report keeps the
  // statistics accumulated up to that point and says why it stopped.
  auto c = test::compile(R"(var A: [{0..#8}] int;
proc main() {
  A[0] = 1;
  var z = 0;
  A[1] = A[0] / z;
  A[2] = 9;
}
)");
  an::loc::LintReport r = an::loc::lint(c->module());
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.error.empty());
  ASSERT_EQ(r.arrays.size(), 1u);
  EXPECT_GE(r.arrays[0].accesses, 2u);  // the accesses before the fault
}

TEST(Lint, StepBudgetTruncatesInsteadOfRunningAway) {
  Profiler p;
  ASSERT_TRUE(p.compileFile(assetProgram("clomp"))) << p.lastError();
  an::loc::Params lp;
  lp.stepBudget = 5000;
  an::loc::LintReport r = an::loc::lint(p.compilation()->module(), lp);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.truncated);
  EXPECT_LE(r.steps, lp.stepBudget + 64);
  EXPECT_NE(findKind(r, an::loc::FindingKind::AnalysisTruncated), nullptr);
}

TEST(Lint, ErroneousModulesNeverCrash) {
  // Lex/parse failures stop before lowering: no IR exists (hasModule() is
  // false) and there is nothing to lint. Failures *during* lowering leave a
  // partial module behind — lint over it must not crash and must come back
  // with ok set (possibly with an abort note).
  const char* broken[] = {
      "proc main() { var x = ; }",                       // parse error, no module
      "var A: [{0..#4}] int;\nproc main() { A[ }",       // parse error, no module
      "proc main() { x = 1; }",                          // undeclared identifier
      "proc main() { var y = noSuchProc(); }",           // unknown call
      "proc f(a: int) { }\nproc main() { f(); }",        // arity mismatch
      "var A: [{0..#4}] int;\nproc main() { A[0] = nope; }",
  };
  size_t linted = 0;
  for (const char* src : broken) {
    SCOPED_TRACE(src);
    auto c = fe::Compilation::fromString("broken.chpl", src, {});
    EXPECT_FALSE(c->ok());
    if (!c->hasModule()) continue;
    an::loc::LintReport r = an::loc::lint(c->module());
    EXPECT_TRUE(r.ok);
    ++linted;
  }
  EXPECT_GE(linted, 3u);  // the lowering-failure cases really produced IR
}

TEST(Lint, OutOfBoundsProgramAbortsSoftly) {
  auto c = test::compile(R"(var A: [{0..#4}] int;
proc main() {
  for i in 0..#8 { A[i] = i; }
}
)");
  an::loc::LintReport r = an::loc::lint(c->module());
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

// ---------------------------------------------------------------------------
// Race-fallback accounting (RunLog::raceFallbackRegions).
// ---------------------------------------------------------------------------

TEST(Lint, RaceFallbackRegionsPinnedPerProgram) {
  // Executed region entries whose task function the shared prover
  // (analysis/race.h) could not clear. Pinned empirically: the corpus
  // programs do contain unprovable regions (reduction-shaped foralls,
  // rotated scatters), so — deviating from the original issue sketch, which
  // assumed zero — the assertion is that the counter is *stable*, and zero
  // exactly where the program really has no unprovable region.
  const std::pair<const char*, uint64_t> expected[] = {
      {"example", 0},   {"minimd", 25},     {"minimd_opt", 25},
      {"minimd_blockloc", 0}, {"minimd_badloc", 0}, {"clomp", 81},
      {"clomp_opt", 81}, {"lulesh", 6},     {"weakscale", 0},
      {"ig_naive", 32},  {"ig_agg", 64},
  };
  for (const auto& [name, count] : expected) {
    SCOPED_TRACE(name);
    Profiler p;
    ASSERT_TRUE(p.compileFile(assetProgram(name)) && p.analyze() && p.run())
        << p.lastError();
    EXPECT_EQ(p.runResult()->log.raceFallbackRegions, count);
  }
}

TEST(Lint, RaceFallbackInvariantAcrossReplayWidths) {
  for (const char* name : {"minimd", "ig_naive"}) {
    SCOPED_TRACE(name);
    uint64_t counts[3];
    size_t k = 0;
    for (uint32_t threads : {1u, 2u, 4u}) {
      Profiler p;
      p.options().run.replayThreads = threads;
      ASSERT_TRUE(p.compileFile(assetProgram(name)) && p.analyze() && p.run());
      counts[k++] = p.runResult()->log.raceFallbackRegions;
    }
    EXPECT_EQ(counts[0], counts[1]);
    EXPECT_EQ(counts[0], counts[2]);
  }
}

// ---------------------------------------------------------------------------
// Fuzz harness: generated PGAS programs. Race-free regions replay
// bit-identically at any width, the lint never crashes, and its predictions
// stay exact.
// ---------------------------------------------------------------------------

std::string fuzzLintProgram(uint64_t seed) {
  Rng rng(seed);
  auto pick = [&](uint32_t n) { return static_cast<uint32_t>(rng.nextBounded(n)); };
  auto num = [](uint64_t v) { return std::to_string(v); };
  uint32_t n = 8 + pick(24);
  const char* dists[] = {"", " dmapped Block", " dmapped Cyclic"};
  std::string s;
  s += "const D = {0..#" + num(n) + "}" + dists[pick(3)] + ";\n";
  s += "const E = {0..#" + num(n) + "}" + dists[pick(3)] + ";\n";
  s += "var a: [D] real;\nvar b: [E] real;\nvar g: [{0..#" + num(n) + "}] real;\n";
  s += "proc fill() {\n  forall i in D { a[i] = i * 0.5; b[i] = i + 0.25; }\n}\n";
  std::string body;
  uint32_t stmts = 1 + pick(3);
  for (uint32_t k = 0; k < stmts; ++k) {
    switch (pick(5)) {
      case 0:
        body += "    forall i in E { b[i] = b[i] + " + num(pick(3)) + ".5; }\n";
        break;
      case 1:
        body += "    for i in 0..#" + num(n) + " { a[i] = a[i] + b[i] * 0.25; }\n";
        break;
      case 2:
        body += "    forall i in D with (var ga = new SrcAggregator(real)) { "
                "ga.copy(g[i], a[i]); }\n";
        break;
      case 3:
        body += "    forall i in E with (var da = new DstAggregator(real)) { "
                "da.copy(b[i], g[i] + 0.25); }\n";
        break;
      default:
        body += "    if here.id == " + num(pick(4)) + " { a[0] = a[0] + 1.0; }\n";
        break;
    }
  }
  const char* targets[] = {"0", "1", "here.id", "here.id + 1", "numLocales - 1"};
  s += "proc step() {\n  on Locales[" + std::string(targets[pick(5)]) + "] {\n" + body +
       "  }\n}\n";
  s += "proc main() {\n  fill();\n  for t in 0..#" + num(1 + pick(2)) + " { step(); }\n";
  s += "  var chk = 0.0;\n";
  s += "  for i in 0..#" + num(n) + " { chk = chk + a[i] + b[i] + g[i]; }\n";
  s += "  writeln(\"chk:\", chk);\n}\n";
  return s;
}

class LintFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LintFuzz, TwentyProgramsPredictExactlyAndReplayIdentically) {
  for (uint64_t k = 0; k < 20; ++k) {
    uint64_t seed = 7000 + GetParam() * 20 + k;
    std::string src = fuzzLintProgram(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto c = fe::Compilation::fromString("lintfuzz.chpl", src, {});
    ASSERT_TRUE(c->ok()) << c->diags().renderAll() << "\n" << src;
    ASSERT_TRUE(ir::verifyModule(c->module()).empty()) << src;

    Rng rng(seed ^ 0x11A7);
    uint32_t numLocales = 1 + static_cast<uint32_t>(rng.nextBounded(4));
    uint32_t localeId = static_cast<uint32_t>(rng.nextBounded(numLocales));
    expectExactParity(c->module(), numLocales, localeId);

    // Race-free ⇒ bit-identical replay at any width; regions the prover
    // could not clear serialize, so the log is width-invariant regardless.
    rt::RunOptions o;
    o.sampleThreshold = 997;
    o.numLocales = numLocales;
    o.localeId = localeId;
    rt::RunResult r1 = rt::execute(c->module(), o);
    o.replayThreads = 4;
    rt::RunResult r4 = rt::execute(c->module(), o);
    ASSERT_TRUE(r1.ok && r4.ok) << r1.error << r4.error << "\n" << src;
    ASSERT_TRUE(sampling::identical(r1.log, r4.log))
        << sampling::firstDifference(r1.log, r4.log) << "\n" << src;
    ASSERT_EQ(r1.output, r4.output) << src;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, LintFuzz, ::testing::Range<uint64_t>(0, 3));

// ---------------------------------------------------------------------------
// Golden lint fixtures: the full `cb --lint` text of the three showcase
// programs, pinned byte-for-byte under tests/golden/ (locations render as
// basenames, so the fixtures are checkout-path independent). Regenerate
// with `cb_tests --update-golden`.
// ---------------------------------------------------------------------------

std::string lintGoldenPath(const std::string& program) {
  return std::string(kGoldenDir) + "/" + program + "_lint.txt";
}

class LintGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(LintGolden, LintTextMatchesFixture) {
  Profiler p;  // compile only — exactly what `cb --lint <prog>` prints
  p.options().run.numLocales = 4;
  ASSERT_TRUE(p.compileFile(assetProgram(GetParam()))) << p.lastError();
  std::string rendered = p.lintText();
  std::string path = lintGoldenPath(GetParam());
  if (test::g_updateGolden) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << rendered;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing fixture " << path << "; run `cb_tests --update-golden`";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(rendered, expected.str())
      << "golden lint mismatch for " << GetParam()
      << "; if intentional, regenerate with `cb_tests --update-golden`";
}

INSTANTIATE_TEST_SUITE_P(Programs, LintGolden,
                         ::testing::Values("minimd_badloc", "ig_naive", "weakscale"));

// ---------------------------------------------------------------------------
// Static-vs-dynamic differential (rpt::lintView with a measured profile).
// ---------------------------------------------------------------------------

TEST(Lint, PredictionTracksMeasurementOnSelfDominatedArrays) {
  // For arrays whose samples come from their own traffic, the cycle-mass
  // model tracks the measured comm split closely (Pos/Vel within 2 points,
  // Force within 6 — its access sites also absorb neighbor-loop compute).
  Profiler p;
  p.options().run.numLocales = 4;
  p.options().run.sampleThreshold = 1009;
  ASSERT_TRUE(p.profileFile(assetProgram("minimd_badloc"))) << p.lastError();
  an::loc::LintReport r = p.lintReport();
  const std::pair<const char*, double> bounds[] = {
      {"Pos", 0.05}, {"Vel", 0.05}, {"Force", 0.07}};
  for (const auto& [name, tol] : bounds) {
    SCOPED_TRACE(name);
    const an::loc::ArrayStats* arr = nullptr;
    for (const an::loc::ArrayStats& a : r.arrays)
      if (a.name == name) arr = &a;
    ASSERT_NE(arr, nullptr);
    const pm::VariableBlame* row = p.blameReport()->find(name);
    ASSERT_NE(row, nullptr);
    uint64_t accessSamples = row->localSamples + row->remoteSamples();
    ASSERT_GE(accessSamples, 16u);
    double measured =
        static_cast<double>(row->remoteSamples()) / static_cast<double>(accessSamples);
    EXPECT_LE(std::fabs(arr->remoteFraction() - measured), tol)
        << "predicted " << arr->remoteFraction() << " measured " << measured;
  }
}

TEST(Lint, DifferentialFlagsAttributionDivergence) {
  // ig_naive's GotCyc is a local staging array, so the static model predicts
  // 0% remote — but blame attribution charges the remote ACyc gathers that
  // feed it to GotCyc, so its measured split is mostly remote. That gap is
  // exactly what the differential exists to surface.
  Profiler p;
  p.options().run.numLocales = 4;
  p.options().run.sampleThreshold = 1009;
  ASSERT_TRUE(p.profileFile(assetProgram("ig_naive"))) << p.lastError();
  std::string v = p.lintText();
  EXPECT_NE(v.find("[static-dynamic-divergence]"), std::string::npos) << v;
  EXPECT_NE(v.find("`GotCyc` predicted"), std::string::npos) << v;
}

TEST(Lint, DifferentialQuietWhenPredictionMatches) {
  Profiler p;
  p.options().run.numLocales = 4;
  p.options().run.sampleThreshold = 1009;
  ASSERT_TRUE(p.profileFile(assetProgram("minimd_badloc"))) << p.lastError();
  std::string v = p.lintText();
  // Pos/Vel/Force all track measurement within the 15-point threshold, so
  // the only findings are the three mis-distribution ones.
  EXPECT_EQ(v.find("[static-dynamic-divergence]"), std::string::npos) << v;
  EXPECT_NE(v.find("[mis-distribution]"), std::string::npos);
}

}  // namespace
}  // namespace cb
