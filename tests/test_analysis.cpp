// Tests for the CFG / dominator / control-dependence machinery underlying
// the blame analysis.
#include <gtest/gtest.h>

#include "analysis/cfg.h"
#include "analysis/control_dep.h"
#include "analysis/dominators.h"
#include "test_util.h"

namespace cb {
namespace {

/// Builds the CFG of a compiled function by display name.
struct Built {
  std::unique_ptr<fe::Compilation> comp;
  const ir::Function* fn = nullptr;
};

Built buildFn(const std::string& src, const std::string& name = "main") {
  Built b;
  b.comp = test::compile(src);
  const ir::Module& m = b.comp->module();
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f)
    if (m.function(f).displayName == name) b.fn = &m.function(f);
  EXPECT_NE(b.fn, nullptr);
  return b;
}

TEST(Cfg, StraightLineHasOneBlock) {
  Built b = buildFn("proc main() { var x = 1; }");
  an::Cfg cfg(*b.fn);
  EXPECT_EQ(cfg.numBlocks(), 1u);
  EXPECT_EQ(cfg.succs(0).size(), 1u);  // virtual exit
  EXPECT_EQ(cfg.succs(0)[0], cfg.virtualExit());
}

TEST(Cfg, IfProducesDiamond) {
  Built b = buildFn("proc main() { var x = 1; if x > 0 { x = 2; } else { x = 3; } }");
  an::Cfg cfg(*b.fn);
  EXPECT_EQ(cfg.numBlocks(), 4u);  // entry, then, else, join
  EXPECT_EQ(cfg.succs(0).size(), 2u);
  EXPECT_EQ(cfg.preds(3).size(), 2u);
}

TEST(Cfg, RpoStartsAtEntry) {
  Built b = buildFn("proc main() { var x = 0; while x < 3 { x = x + 1; } }");
  an::Cfg cfg(*b.fn);
  ASSERT_FALSE(cfg.rpo().empty());
  EXPECT_EQ(cfg.rpo().front(), 0u);
}

TEST(Dominators, EntryDominatesAll) {
  Built b = buildFn("proc main() { var x = 1; if x > 0 { x = 2; } x = 3; }");
  an::Cfg cfg(*b.fn);
  an::DominatorTree dom(cfg, false);
  for (ir::BlockId blk = 0; blk < cfg.numBlocks(); ++blk)
    EXPECT_TRUE(dom.dominates(0, blk)) << "entry should dominate bb" << blk;
}

TEST(Dominators, BranchArmsDoNotDominateJoin) {
  Built b = buildFn("proc main() { var x = 1; if x > 0 { x = 2; } else { x = 3; } x = 4; }");
  an::Cfg cfg(*b.fn);
  an::DominatorTree dom(cfg, false);
  // Blocks 1 and 2 are the arms; 3 is the join.
  EXPECT_FALSE(dom.dominates(1, 3));
  EXPECT_FALSE(dom.dominates(2, 3));
  EXPECT_EQ(dom.idom(3), 0u);
}

TEST(Dominators, PostDomExitDominatesAll) {
  Built b = buildFn("proc main() { var x = 0; while x < 3 { x = x + 1; } }");
  an::Cfg cfg(*b.fn);
  an::DominatorTree post(cfg, true);
  for (ir::BlockId blk = 0; blk < cfg.numBlocks(); ++blk)
    EXPECT_TRUE(post.dominates(cfg.virtualExit(), blk));
}

TEST(ControlDep, IfArmDependsOnBranch) {
  Built b = buildFn("proc main() { var x = 1; if x > 0 { x = 2; } x = 3; }");
  an::Cfg cfg(*b.fn);
  an::DominatorTree post(cfg, true);
  an::ControlDependence cd(cfg, post);
  // The then-arm (bb1) is control-dependent on the entry branch (bb0).
  ASSERT_EQ(cd.controllers(1).size(), 1u);
  EXPECT_EQ(cd.controllers(1)[0], 0u);
  // The join is not control-dependent on the branch.
  bool joinDependsOnEntry = false;
  for (ir::BlockId a : cd.controllers(2))
    if (a == 0) joinDependsOnEntry = true;
  EXPECT_FALSE(joinDependsOnEntry);
}

TEST(ControlDep, LoopBodyDependsOnHeader) {
  Built b = buildFn("proc main() { var x = 0; while x < 3 { x = x + 1; } }");
  an::Cfg cfg(*b.fn);
  an::DominatorTree post(cfg, true);
  an::ControlDependence cd(cfg, post);
  // Find the header (the block with 2 successors).
  ir::BlockId header = an::kNoBlock;
  for (ir::BlockId blk = 0; blk < cfg.numBlocks(); ++blk)
    if (cfg.succs(blk).size() == 2) header = blk;
  ASSERT_NE(header, an::kNoBlock);
  // Every block inside the loop (reaching back to the header) depends on it,
  // including the header itself (classic loop self-dependence).
  bool someBodyDependsOnHeader = false;
  for (ir::BlockId blk = 0; blk < cfg.numBlocks(); ++blk) {
    for (ir::BlockId a : cd.controllers(blk))
      if (a == header && blk != header) someBodyDependsOnHeader = true;
  }
  EXPECT_TRUE(someBodyDependsOnHeader);
  const auto& selfCtl = cd.controllers(header);
  EXPECT_NE(std::find(selfCtl.begin(), selfCtl.end(), header), selfCtl.end());
}

TEST(ControlDep, NestedIfHasTransitiveControllers) {
  Built b = buildFn(
      "proc main() { var x = 1; if x > 0 { if x > 1 { x = 9; } } }");
  an::Cfg cfg(*b.fn);
  an::DominatorTree post(cfg, true);
  an::ControlDependence cd(cfg, post);
  // The innermost block depends on the inner branch (directly); the inner
  // branch block depends on the outer branch.
  size_t blocksWithControllers = 0;
  for (ir::BlockId blk = 0; blk < cfg.numBlocks(); ++blk)
    if (!cd.controllers(blk).empty()) ++blocksWithControllers;
  EXPECT_GE(blocksWithControllers, 2u);
}

TEST(ControlDep, StraightLineHasNoControllers) {
  Built b = buildFn("proc main() { var x = 1; var y = x + 1; }");
  an::Cfg cfg(*b.fn);
  an::DominatorTree post(cfg, true);
  an::ControlDependence cd(cfg, post);
  EXPECT_TRUE(cd.controllers(0).empty());
}

}  // namespace
}  // namespace cb
