// Tests of the static blame analysis (§III/§IV.A): blame-line sets,
// explicit/implicit/alias transfer, hierarchy, exit variables, transfer
// functions.
#include <gtest/gtest.h>

#include "analysis/blame.h"
#include "test_util.h"

namespace cb {
namespace {

using test::blameLinesOf;
using test::profileSource;

/// The paper's Fig. 1 code, with the statements pinned to lines 6..10.
const char* kFig1 = R"(proc main() {
  var a: int;
  var b: int;
  var c: int;

  a = 2;
  b = 3;
  if a < b then
    a = b + 1;
  c = a + b;
}
)";

TEST(Blame, Fig1TableI) {
  Profiler p = profileSource(kFig1);
  EXPECT_EQ(blameLinesOf(p, "main", "a", 6, 10), (std::set<uint32_t>{6, 8, 9}));
  EXPECT_EQ(blameLinesOf(p, "main", "b", 6, 10), (std::set<uint32_t>{7}));
  EXPECT_EQ(blameLinesOf(p, "main", "c", 6, 10), (std::set<uint32_t>{6, 7, 8, 9, 10}));
}

TEST(Blame, ConditionalWriteDoesNotTransferExplicitly) {
  // `a = b + 1` under the if contributes its line to a, but a must NOT
  // inherit b's write line (Table I: a lacks line 17 of the paper).
  Profiler p = profileSource(kFig1);
  auto a = blameLinesOf(p, "main", "a", 6, 10);
  EXPECT_EQ(a.count(7), 0u);
}

TEST(Blame, UnconditionalWriteTransfersExplicitly) {
  Profiler p = profileSource(R"(proc main() {
  var x = 2;
  var y = x * 3;
  writeln(y);
}
)");
  // y = x*3 (line 3) inherits x's write line (2).
  auto y = blameLinesOf(p, "main", "y", 1, 5);
  EXPECT_TRUE(y.count(2));
  EXPECT_TRUE(y.count(3));
}

TEST(Blame, LoopBodyInheritsLoopLine) {
  Profiler p = profileSource(R"(proc main() {
  var s = 0;
  for i in 1..4 {
    s = s + i;
  }
  writeln(s);
}
)");
  auto s = blameLinesOf(p, "main", "s", 1, 6);
  EXPECT_TRUE(s.count(3)) << "s must inherit the loop-control line (implicit transfer)";
  EXPECT_TRUE(s.count(4));
}

TEST(Blame, ImplicitTransferCanBeDisabled) {
  ProfileOptions opts;
  opts.blame.implicitTransfer = false;
  Profiler p(opts);
  ASSERT_TRUE(p.profileString("test.chpl", kFig1)) << p.lastError();
  auto a = blameLinesOf(p, "main", "a", 6, 10);
  EXPECT_EQ(a.count(8), 0u) << "without implicit transfer the condition line disappears";
}

TEST(Blame, AliasOwnerInheritsAliasBlame) {
  Profiler p = profileSource(R"(const D = {0..#8};
const I = {2..5};
var A: [D] real;
var V => A[I];
proc main() {
  V[3] = 1.5;
  writeln(A[3]);
}
)");
  const ir::Module& m = p.compilation()->module();
  // Statically: within main, the write through V is rooted at V; the module
  // alias group ties V and A together. Check the group.
  ir::GlobalId aId = ir::kNone, vId = ir::kNone;
  for (ir::GlobalId g = 0; g < m.numGlobals(); ++g) {
    std::string n = m.interner().str(m.global(g).name);
    if (n == "A") aId = g;
    if (n == "V") vId = g;
  }
  ASSERT_NE(aId, ir::kNone);
  ASSERT_NE(vId, ir::kNone);
  auto sibs = p.moduleBlame()->aliasSiblings(vId);
  EXPECT_NE(std::find(sibs.begin(), sibs.end(), aId), sibs.end());
}

TEST(Blame, HierarchicalEntitiesForRecordFields) {
  Profiler p = profileSource(R"(const ZD = {0..#4};
record Zone { var value: real; }
record Part { var residue: real; var zones: [ZD] Zone; }
const PD = {0..#2};
var parts: [PD] Part;
proc main() {
  parts[0].zones[1].value = 2.0;
  writeln(parts[0].zones[1].value);
}
)",
                             ProfileOptions{});
  const ir::Module& m = p.compilation()->module();
  const an::FunctionBlame& fb = p.moduleBlame()->fn(m.mainFunc);
  std::set<std::string> names;
  for (const an::Entity& e : fb.entities) names.insert(e.displayName);
  EXPECT_TRUE(names.count("parts"));
  EXPECT_TRUE(names.count("->parts[i]"));
  EXPECT_TRUE(names.count("->parts[i].zones"));
  EXPECT_TRUE(names.count("->parts[i].zones[j]"));
  EXPECT_TRUE(names.count("->parts[i].zones[j].value"));
}

TEST(Blame, ParentInheritsChildBlame) {
  Profiler p = profileSource(R"(record P { var x: real; var y: real; }
var g: P;
proc main() {
  g.x = 1.0;
  g.y = 2.0;
  writeln(g.x);
}
)");
  const ir::Module& m = p.compilation()->module();
  const an::FunctionBlame& fb = p.moduleBlame()->fn(m.mainFunc);
  std::set<uint32_t> parentLines, xLines, yLines;
  for (an::EntityId e = 0; e < fb.entities.size(); ++e) {
    const std::string& n = fb.entities[e].displayName;
    auto lines = fb.blameLines(m, e);
    if (n == "g") parentLines = lines;
    if (n == "->g.x") xLines = lines;
    if (n == "->g.y") yLines = lines;
  }
  for (uint32_t l : xLines) EXPECT_TRUE(parentLines.count(l));
  for (uint32_t l : yLines) EXPECT_TRUE(parentLines.count(l));
}

TEST(Blame, RefParamsAreExitVariables) {
  Profiler p = profileSource(R"(proc bump(ref v: real, amount: real) {
  v = v + amount;
}
proc main() {
  var x = 0.0;
  bump(x, 1.5);
  writeln(x);
}
)");
  const ir::Module& m = p.compilation()->module();
  ir::FuncId f = ir::kNone;
  for (ir::FuncId i = 0; i < m.numFunctions(); ++i)
    if (m.function(i).displayName == "bump") f = i;
  const an::FunctionBlame& fb = p.moduleBlame()->fn(f);
  bool vExit = false, amountExit = false;
  for (an::EntityId e = 0; e < fb.entities.size(); ++e) {
    if (fb.entities[e].displayName == "v") vExit = fb.exitViaCaller[e];
    if (fb.entities[e].displayName == "amount") amountExit = fb.exitViaCaller[e];
  }
  EXPECT_TRUE(vExit);
  EXPECT_FALSE(amountExit);  // by-value scalars don't bubble
}

TEST(Blame, CallsiteTransferMapsArgToCallerEntity) {
  Profiler p = profileSource(R"(proc bump(ref v: real) { v = v + 1.0; }
proc main() {
  var x = 0.0;
  bump(x);
  writeln(x);
}
)");
  const ir::Module& m = p.compilation()->module();
  const an::FunctionBlame& fb = p.moduleBlame()->fn(m.mainFunc);
  bool found = false;
  for (const auto& [instr, cs] : fb.callsites) {
    if (m.function(cs.callee).displayName != "bump") continue;
    found = true;
    ASSERT_EQ(cs.paramToCallerEntity.size(), 1u);
    ASSERT_NE(cs.paramToCallerEntity[0], an::kNoEntity);
    EXPECT_EQ(fb.entities[cs.paramToCallerEntity[0]].displayName, "x");
  }
  EXPECT_TRUE(found);
}

TEST(Blame, ReturnValueFeedsResultTargets) {
  Profiler p = profileSource(R"(proc three(): int { return 3; }
proc main() {
  var x = three();
  writeln(x);
}
)");
  const ir::Module& m = p.compilation()->module();
  const an::FunctionBlame& fb = p.moduleBlame()->fn(m.mainFunc);
  bool xIsTarget = false;
  for (const auto& [instr, cs] : fb.callsites) {
    for (an::EntityId t : cs.resultTargets)
      if (fb.entities[t].displayName == "x") xIsTarget = true;
  }
  EXPECT_TRUE(xIsTarget);
}

TEST(Blame, CompilerTempsAreHidden) {
  Profiler p = profileSource("proc main() { var shown = 1; for i in 0..3 { shown += i; } "
                             "writeln(shown); }");
  const ir::Module& m = p.compilation()->module();
  const an::FunctionBlame& fb = p.moduleBlame()->fn(m.mainFunc);
  for (const an::Entity& e : fb.entities) {
    if (e.displayName.rfind("_tmp", 0) == 0 || e.displayName.rfind("_local", 0) == 0)
      EXPECT_FALSE(e.displayable);
  }
}

TEST(Blame, StrippedDebugInfoHidesEverything) {
  fe::CompileOptions copts;
  copts.fast = true;
  auto c = fe::Compilation::fromString("t.chpl", kFig1, copts);
  ASSERT_TRUE(c->ok());
  an::ModuleBlame mb = an::analyzeModule(c->module());
  for (const an::FunctionBlame& fb : mb.functions)
    for (const an::Entity& e : fb.entities) EXPECT_FALSE(e.displayable);
}

TEST(Blame, InstrEntityIndexIsConsistent) {
  Profiler p = profileSource(kFig1);
  const ir::Module& m = p.compilation()->module();
  const an::FunctionBlame& fb = p.moduleBlame()->fn(m.mainFunc);
  for (an::EntityId e = 0; e < fb.entities.size(); ++e) {
    for (ir::InstrId i : fb.blameInstrs[e]) {
      const auto& ents = fb.instrEntities[i];
      EXPECT_NE(std::find(ents.begin(), ents.end(), e), ents.end());
    }
  }
}

TEST(Blame, ViewDescriptorWritesBlameBaseAndDomain) {
  Profiler p = profileSource(R"(const D = {0..#8};
var A: [D] real;
proc main() {
  for i in 0..#4 {
    var V => A[D];
    V[i] = 1.0;
  }
  writeln(A[0]);
}
)");
  // The remap line (5) must appear in the blame of both A and D.
  auto aLines = blameLinesOf(p, "main", "A", 4, 7);
  auto dLines = blameLinesOf(p, "main", "D", 4, 7);
  EXPECT_TRUE(aLines.count(5));
  EXPECT_TRUE(dLines.count(5));
}

}  // namespace
}  // namespace cb
