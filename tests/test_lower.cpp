// Tests of AST -> CIR lowering: IR shapes, debug info, task outlining,
// captures, and the --fast pass pipeline.
#include <gtest/gtest.h>

#include "frontend/passes.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "test_util.h"

namespace cb {
namespace {

using test::compile;

const ir::Function& findFn(const ir::Module& m, const std::string& name) {
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f)
    if (m.function(f).displayName == name) return m.function(f);
  ADD_FAILURE() << "function " << name << " not found";
  static ir::Function dummy;
  return dummy;
}

size_t countOps(const ir::Function& f, ir::Opcode op) {
  size_t n = 0;
  for (const ir::Instr& in : f.instrs)
    if (in.op == op) ++n;
  return n;
}

TEST(Lower, UserVariablesGetAllocasWithDebugInfo) {
  auto c = compile("proc main() { var counter = 0; var rate: real; }");
  const ir::Function& f = findFn(c->module(), "main");
  std::vector<std::string> names;
  for (const ir::Instr& in : f.instrs) {
    if (in.op != ir::Opcode::Alloca || in.extra.debugVar == ir::kNone) continue;
    const ir::DebugVar& dv = c->module().debugVar(in.extra.debugVar);
    if (dv.displayable()) names.push_back(c->module().interner().str(dv.name));
  }
  EXPECT_EQ(names, (std::vector<std::string>{"counter", "rate"}));
}

TEST(Lower, ModuleInitStoresGlobalsInOrder) {
  auto c = compile("const a = 1;\nconst b = a + 1;\nproc main() { writeln(b); }");
  const ir::Module& m = c->module();
  ASSERT_NE(m.moduleInitFunc, ir::kNone);
  EXPECT_EQ(m.numGlobals(), 2u);
  EXPECT_EQ(m.interner().str(m.global(0).name), "a");
  EXPECT_EQ(m.interner().str(m.global(1).name), "b");
}

TEST(Lower, ConfigConstUsesConfigGet) {
  auto c = compile("config const n = 16;\nproc main() { }");
  const ir::Function& init = c->module().function(c->module().moduleInitFunc);
  bool found = false;
  for (const ir::Instr& in : init.instrs)
    if (in.op == ir::Opcode::Builtin && in.extra.builtin == ir::BuiltinKind::ConfigGet)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Lower, ForallOutlinesTaskFunction) {
  auto c = compile("const D = {0..#8};\nvar A: [D] int;\n"
                   "proc main() { forall i in D { A[i] = i; } }");
  const ir::Module& m = c->module();
  bool found = false;
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    const ir::Function& fn = m.function(f);
    if (!fn.isTaskFn()) continue;
    found = true;
    EXPECT_EQ(fn.taskKind, ir::TaskKind::Forall);
    EXPECT_EQ(m.function(fn.spawnParent).displayName, "main");
    EXPECT_GE(fn.params.size(), 2u);  // chunk_lo, chunk_hi
    EXPECT_EQ(m.interner().str(fn.params[0].name), "chunk_lo");
  }
  EXPECT_TRUE(found);
  const ir::Function& main = findFn(m, "main");
  EXPECT_EQ(countOps(main, ir::Opcode::Spawn), 1u);
}

TEST(Lower, CoforallTaskKind) {
  auto c = compile("proc main() { coforall t in 0..#4 { var x = t; } }");
  const ir::Module& m = c->module();
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f)
    if (m.function(f).isTaskFn())
      EXPECT_EQ(m.function(f).taskKind, ir::TaskKind::Coforall);
}

TEST(Lower, CapturedLocalsBecomeRefParams) {
  auto c = compile("const D = {0..#8};\nvar A: [D] int;\n"
                   "proc main() { var base = 3; forall i in D { A[i] = base; } }");
  const ir::Module& m = c->module();
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    const ir::Function& fn = m.function(f);
    if (!fn.isTaskFn()) continue;
    bool sawBase = false;
    for (const ir::Param& p : fn.params) {
      if (m.interner().str(p.name) == "base") {
        sawBase = true;
        EXPECT_TRUE(p.byRef);
      }
    }
    EXPECT_TRUE(sawBase) << "capture 'base' missing from task params";
  }
}

TEST(Lower, GlobalsAreNotCaptured) {
  auto c = compile("const D = {0..#8};\nvar A: [D] int;\nvar g = 5;\n"
                   "proc main() { forall i in D { A[i] = g; } }");
  const ir::Module& m = c->module();
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    const ir::Function& fn = m.function(f);
    if (!fn.isTaskFn()) continue;
    for (const ir::Param& p : fn.params) EXPECT_NE(m.interner().str(p.name), "g");
  }
}

TEST(Lower, ZippedLoopEmitsIterOverheadWithArrayOperands) {
  auto c = compile("const D = {0..#8};\nvar A: [D] int;\nvar B: [D] int;\n"
                   "proc main() { for (a, b) in zip(A, B) { b = a; } }");
  const ir::Function& main = findFn(c->module(), "main");
  bool found = false;
  for (const ir::Instr& in : main.instrs) {
    if (in.op != ir::Opcode::IterOverhead) continue;
    found = true;
    EXPECT_EQ(in.imm, 2u);
    EXPECT_EQ(in.ops.size(), 2u);  // both array iterands carried as operands
  }
  EXPECT_TRUE(found);
}

TEST(Lower, NonZippedLoopHasNoIterOverhead) {
  auto c = compile("const D = {0..#8};\nvar A: [D] int;\n"
                   "proc main() { for i in D { A[i] = i; } }");
  EXPECT_EQ(countOps(findFn(c->module(), "main"), ir::Opcode::IterOverhead), 0u);
}

TEST(Lower, ParamLoopFullyUnrolled) {
  auto c = compile("proc main() { var t: 4*int; for param k in 1..4 { t(k) = k; } }");
  const ir::Function& main = findFn(c->module(), "main");
  // No branches: the loop disappeared.
  EXPECT_EQ(countOps(main, ir::Opcode::CondBr), 0u);
  EXPECT_EQ(countOps(main, ir::Opcode::TupleAddr), 4u);
}

TEST(Lower, DynamicTupleIndexUsesOperandForm) {
  auto c = compile("proc main() { var t = (1.0, 2.0); var i = 1; var x = t(i); }");
  const ir::Function& main = findFn(c->module(), "main");
  bool sawDynamic = false;
  for (const ir::Instr& in : main.instrs)
    if (in.op == ir::Opcode::TupleGet && in.ops.size() == 2) sawDynamic = true;
  EXPECT_TRUE(sawDynamic);
}

TEST(Lower, StaticTupleIndexUsesImmediateForm) {
  auto c = compile("proc main() { var t = (1.0, 2.0); var x = t(2); }");
  const ir::Function& main = findFn(c->module(), "main");
  for (const ir::Instr& in : main.instrs)
    if (in.op == ir::Opcode::TupleGet) EXPECT_EQ(in.ops.size(), 1u);
}

TEST(Lower, SliceProducesArrayView) {
  auto c = compile("const D = {0..#8};\nconst I = {2..5};\nvar A: [D] int;\n"
                   "proc main() { var V => A[I]; V[3] = 1; }");
  const ir::Function& main = findFn(c->module(), "main");
  EXPECT_EQ(countOps(main, ir::Opcode::ArrayView), 1u);
}

TEST(Lower, WholeArrayAssignmentsUseBuiltins) {
  auto c = compile("const D = {0..#8};\nvar A: [D] real;\nvar B: [D] real;\n"
                   "proc main() { A = 1.5; B = A; }");
  const ir::Function& main = findFn(c->module(), "main");
  size_t fills = 0, copies = 0;
  for (const ir::Instr& in : main.instrs) {
    if (in.op != ir::Opcode::Builtin) continue;
    if (in.extra.builtin == ir::BuiltinKind::ArrayFill) ++fills;
    if (in.extra.builtin == ir::BuiltinKind::ArrayCopy) ++copies;
  }
  EXPECT_EQ(fills, 1u);
  EXPECT_EQ(copies, 1u);
}

TEST(Lower, RecordFieldReadsUseFieldAddr) {
  auto c = compile("record P { var x: real; }\nvar p: P;\n"
                   "proc main() { var v = p.x; }");
  const ir::Function& main = findFn(c->module(), "main");
  EXPECT_GE(countOps(main, ir::Opcode::FieldAddr), 1u);
  // No whole-record TupleGet extraction for addressable bases.
  EXPECT_EQ(countOps(main, ir::Opcode::TupleGet), 0u);
}

TEST(Lower, ArrayParamsAreByRef) {
  auto c = compile("const D = {0..#4};\n"
                   "proc f(A: [D] real, x: int) { }\nproc main() { }");
  const ir::Function& f = findFn(c->module(), "f");
  EXPECT_TRUE(f.params[0].byRef);   // arrays have reference semantics
  EXPECT_FALSE(f.params[1].byRef);  // scalars by value
}

TEST(Lower, TypeAliasDisplaysAliasName) {
  auto c = compile("type v3 = 3*real;\nvar g: v3;\nproc main() { }");
  const ir::Module& m = c->module();
  EXPECT_EQ(m.debugVar(m.global(0).debugVar).typeDisplay, "v3");
}

TEST(Lower, NestedArrayDeclInitializesInnerArrays) {
  auto c = compile("const O = {0..#3};\nconst I = {0..#2};\nvar A: [O] [I] real;\n"
                   "proc main() { }");
  // Inner allocation loop lives in _module_init: one outer + per-element
  // inner ArrayNew (emitted once inside a loop).
  const ir::Function& init = c->module().function(c->module().moduleInitFunc);
  EXPECT_GE(countOps(init, ir::Opcode::ArrayNew), 2u);
  EXPECT_GE(countOps(init, ir::Opcode::CondBr), 1u);  // the init loop
}

TEST(Lower, ErrorUnknownIdentifier) {
  auto c = fe::Compilation::fromString("t.chpl", "proc main() { writeln(nope); }");
  EXPECT_FALSE(c->ok());
  EXPECT_NE(c->diags().renderAll().find("unknown identifier"), std::string::npos);
}

TEST(Lower, ErrorMissingMain) {
  auto c = fe::Compilation::fromString("t.chpl", "proc helper() { }");
  EXPECT_FALSE(c->ok());
  EXPECT_NE(c->diags().renderAll().find("no 'main'"), std::string::npos);
}

TEST(Lower, ErrorArityMismatch) {
  auto c = fe::Compilation::fromString(
      "t.chpl", "proc f(x: int) { }\nproc main() { f(1, 2); }");
  EXPECT_FALSE(c->ok());
  EXPECT_NE(c->diags().renderAll().find("arguments"), std::string::npos);
}

TEST(Lower, ErrorTypeMismatch) {
  auto c = fe::Compilation::fromString("t.chpl",
                                       "proc main() { var x: int = (1.0, 2.0); }");
  EXPECT_FALSE(c->ok());
}

// ---- --fast pass pipeline -------------------------------------------------

TEST(Passes, ConstantFoldingPropagates) {
  auto c = compile("proc main() { var x = 2 + 3 * 4; writeln(x); }");
  size_t folded = fe::constantFold(c->module());
  EXPECT_GE(folded, 2u);
}

TEST(Passes, DeadCodeElimRemovesUnusedPureInstrs) {
  auto c = compile("proc main() { var x = 1 + 2; }");
  fe::constantFold(c->module());
  size_t removed = fe::deadCodeElim(c->module());
  EXPECT_GE(removed, 1u);
  EXPECT_TRUE(ir::verifyModule(c->module()).empty());
}

TEST(Passes, ForwardLoadsWithinBlock) {
  auto c = compile("proc main() { var x = 5; var y = x + 1; writeln(y); }");
  size_t fwd = fe::forwardLoads(c->module());
  EXPECT_GE(fwd, 1u);
  EXPECT_TRUE(ir::verifyModule(c->module()).empty());
}

TEST(Passes, StripDebugInfoDemotesVariables) {
  auto c = compile("proc main() { var visible = 1; writeln(visible); }");
  fe::stripDebugInfo(c->module());
  EXPECT_TRUE(c->module().debugInfoStripped);
  for (uint32_t i = 0; i < c->module().numDebugVars(); ++i)
    EXPECT_FALSE(c->module().debugVar(i).displayable());
}

TEST(Passes, FastPipelinePreservesSemantics) {
  const char* src =
      "const D = {0..#16};\nvar A: [D] real;\n"
      "proc main() { for i in D { A[i] = i * 0.5 + 1.0; } var s = 0.0; "
      "for i in D { s += A[i]; } writeln(s); }";
  std::string plain = test::runOutput(src);
  fe::CompileOptions fast;
  fast.fast = true;
  std::string fastOut = test::runOutput(src, {}, fast);
  EXPECT_EQ(plain, fastOut);
}

TEST(Passes, FastPipelineKeepsBenchChecksums) {
  for (const char* prog : {"clomp", "minimd", "lulesh"}) {
    Profiler plain;
    plain.options().run.sampleThreshold = 0;
    ASSERT_TRUE(plain.compileFile(assetProgram(prog)) && plain.run()) << plain.lastError();
    Profiler fast;
    fast.options().compile.fast = true;
    fast.options().run.sampleThreshold = 0;
    ASSERT_TRUE(fast.compileFile(assetProgram(prog)) && fast.run()) << fast.lastError();
    EXPECT_EQ(plain.runResult()->output, fast.runResult()->output) << prog;
  }
}

}  // namespace
}  // namespace cb
