// Tests of the virtual PMU and the raw monitoring artefacts (samples,
// spawn records, idle accounting, allocation sites).
#include <gtest/gtest.h>

#include "sampling/sample.h"
#include "test_util.h"

namespace cb {
namespace {

TEST(Pmu, OverflowEveryThreshold) {
  sampling::VirtualPmu pmu(100, 1);
  EXPECT_EQ(pmu.advance(0, 99), 0u);
  EXPECT_EQ(pmu.advance(0, 1), 1u);   // exactly at threshold
  EXPECT_EQ(pmu.advance(0, 199), 1u);
  EXPECT_EQ(pmu.advance(0, 1), 1u);
}

TEST(Pmu, LargeCostTriggersMultipleOverflows) {
  sampling::VirtualPmu pmu(10, 1);
  EXPECT_EQ(pmu.advance(0, 35), 3u);
}

TEST(Pmu, ZeroThresholdDisables) {
  sampling::VirtualPmu pmu(0, 1);
  EXPECT_EQ(pmu.advance(0, 1000000), 0u);
}

TEST(Pmu, StreamsAreIndependent) {
  sampling::VirtualPmu pmu(100, 3);
  pmu.advance(0, 250);
  EXPECT_EQ(pmu.clock(0), 250u);
  EXPECT_EQ(pmu.clock(1), 0u);
  EXPECT_EQ(pmu.advance(1, 100), 1u);
}

TEST(Pmu, SetClockRealignsNextSample) {
  sampling::VirtualPmu pmu(100, 1);
  pmu.setClock(0, 950);
  EXPECT_EQ(pmu.advance(0, 49), 0u);
  EXPECT_EQ(pmu.advance(0, 1), 1u);  // at 1000
}

TEST(Sampling, SamplesCarryStacksAndTags) {
  const char* src =
      "const D = {0..#64};\nvar A: [D] real;\n"
      "proc work() { forall i in D { var t = 0.0; for j in 0..#50 { t += i * j; } A[i] = t; } "
      "}\nproc main() { work(); }";
  auto c = fe::Compilation::fromString("t.chpl", src);
  ASSERT_TRUE(c->ok());
  rt::RunOptions o;
  o.sampleThreshold = 101;
  rt::RunResult r = rt::execute(c->module(), o);
  ASSERT_TRUE(r.ok);
  const sampling::RunLog& log = r.log;
  ASSERT_GT(log.samples.size(), 10u);
  ASSERT_EQ(log.spawns.size(), 1u);

  const sampling::SpawnRecord& rec = log.spawns.begin()->second;
  EXPECT_EQ(rec.parentTag, 0u);
  ASSERT_GE(rec.preSpawnStack.size(), 2u);  // main -> work (at the spawn)
  EXPECT_EQ(c->module().function(rec.preSpawnStack[0].func).displayName, "main");
  EXPECT_EQ(c->module().function(rec.preSpawnStack[1].func).displayName, "work");

  bool sawWorkerSample = false;
  for (const sampling::RawSample& s : log.samples) {
    if (s.taskTag == 0) continue;
    sawWorkerSample = true;
    EXPECT_EQ(s.taskTag, rec.tag);
    ASSERT_FALSE(s.stack.empty());
    // Post-spawn stacks are task-local: rooted at the task function.
    EXPECT_TRUE(c->module().function(s.stack[0].func).isTaskFn());
  }
  EXPECT_TRUE(sawWorkerSample);
}

TEST(Sampling, NestedSpawnsChainTags) {
  const char* src =
      "const D = {0..#4};\nvar A: [D] [D] real;\n"
      "proc main() { forall i in D { forall j in D { var t = 0.0; for k in 0..#80 { t += k; } "
      "A[i][j] = t; } } }";
  auto c = fe::Compilation::fromString("t.chpl", src);
  ASSERT_TRUE(c->ok());
  rt::RunOptions o;
  o.sampleThreshold = 53;
  rt::RunResult r = rt::execute(c->module(), o);
  ASSERT_TRUE(r.ok);
  // At least one spawn record must have a non-zero parent (nested).
  bool nested = false;
  for (const auto& [tag, rec] : r.log.spawns)
    if (rec.parentTag != 0) nested = true;
  EXPECT_TRUE(nested);
}

TEST(Sampling, IdleWorkersProduceRuntimeFrames) {
  // Serial main-thread work between parallel regions must surface as
  // __sched_yield-style samples on the workers.
  const char* src =
      "const D = {0..#24};\nvar A: [D] real;\n"
      "proc main() { forall i in D { A[i] = i; } var s = 0.0; for r in 0..#200 { for i in D { "
      "s += A[i]; } } forall i in D { A[i] = s; } }";
  auto c = fe::Compilation::fromString("t.chpl", src);
  ASSERT_TRUE(c->ok());
  rt::RunOptions o;
  o.sampleThreshold = 211;
  rt::RunResult r = rt::execute(c->module(), o);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.log.numIdleSamples(), 0u);
  EXPECT_GT(r.log.numUserSamples(), 0u);
}

TEST(Sampling, NoIdleWhenDisabled) {
  const char* src = "const D = {0..#24};\nvar A: [D] real;\nproc main() { forall i in D { A[i] "
                    "= i; } var s = 0.0; for r in 0..#100 { s += r; } }";
  auto c = fe::Compilation::fromString("t.chpl", src);
  ASSERT_TRUE(c->ok());
  rt::RunOptions o;
  o.sampleThreshold = 101;
  o.sampleIdle = false;
  rt::RunResult r = rt::execute(c->module(), o);
  EXPECT_EQ(r.log.numIdleSamples(), 0u);
}

TEST(Sampling, AllocationSitesRecorded) {
  const char* src = "const D = {0..#2048};\nproc main() { var A: [D] real; A[5] = 1.0; }";
  auto c = fe::Compilation::fromString("t.chpl", src);
  ASSERT_TRUE(c->ok());
  rt::RunOptions o;
  o.sampleThreshold = 0;
  rt::RunResult r = rt::execute(c->module(), o);
  ASSERT_TRUE(r.ok);
  bool bigAlloc = false;
  for (const auto& [site, bytes] : r.log.allocBytesBySite)
    if (bytes >= 4096) bigAlloc = true;
  EXPECT_TRUE(bigAlloc);  // 2048 reals = 16 KB
}

TEST(Sampling, DeterministicAcrossRuns) {
  auto c = fe::Compilation::fromString(
      "t.chpl",
      "const D = {0..#32};\nvar A: [D] real;\nproc main() { forall i in D { A[i] = i * 2.0; } }");
  ASSERT_TRUE(c->ok());
  rt::RunOptions o;
  o.sampleThreshold = 101;
  rt::RunResult r1 = rt::execute(c->module(), o);
  rt::RunResult r2 = rt::execute(c->module(), o);
  ASSERT_EQ(r1.log.samples.size(), r2.log.samples.size());
  for (size_t i = 0; i < r1.log.samples.size(); ++i) {
    EXPECT_EQ(r1.log.samples[i].stream, r2.log.samples[i].stream);
    EXPECT_EQ(r1.log.samples[i].atCycle, r2.log.samples[i].atCycle);
    EXPECT_EQ(r1.log.samples[i].stack.size(), r2.log.samples[i].stack.size());
  }
  EXPECT_EQ(r1.totalCycles, r2.totalCycles);
}

TEST(Sampling, RuntimeFrameNames) {
  EXPECT_STREQ(sampling::runtimeFrameName(sampling::RuntimeFrameKind::SchedYield),
               "__sched_yield");
  EXPECT_STREQ(sampling::runtimeFrameName(sampling::RuntimeFrameKind::ChplTaskYield),
               "chpl_thread_yield");
}

}  // namespace
}  // namespace cb
